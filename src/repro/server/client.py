"""A stdlib client for the experiment server.

:class:`ServerClient` wraps ``urllib`` so the load harness, the chaos
drill, and tests all speak to ``repro serve`` the same way.  HTTP error
statuses are returned as values, not raised -- load and chaos callers
need to *count* 429s and connection drops, and an exception-per-shed
harness would be the tail wagging the dog.  Transport failures
(connection refused, reset mid-response -- the ``server.accept`` /
``server.respond`` fault sites look exactly like this) come back as
status ``0``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from repro.obs import tracectx


@dataclass
class Response:
    """One HTTP exchange, flattened for counting."""

    status: int
    body: Dict[str, Any] = field(default_factory=dict)
    retry_after_s: Optional[int] = None
    #: Transport-level failure detail when ``status == 0``.
    transport_error: Optional[str] = None
    #: The raw (decoded) response body; non-JSON endpoints such as the
    #: Prometheus ``/metrics`` exposition are read from here.
    text: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def shed(self) -> bool:
        """Load-shedding responses: explicit, retryable refusals."""
        return self.status in (429, 503) and self.retry_after_s is not None

    @property
    def dropped(self) -> bool:
        return self.status == 0


class ServerClient:
    """Thin JSON client; one instance per target server."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------- #

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> Response:
        data = json.dumps(body).encode() if body is not None else None
        headers: Dict[str, str] = (
            {"Content-Type": "application/json"} if data is not None else {}
        )
        # Distributed tracing: when a trace context is active on this
        # thread, mint a child span for the HTTP exchange and carry it
        # to the server in the Traceparent header; server-side spans
        # become this span's children.
        ctx = tracectx.child_context()
        if ctx is not None:
            headers[tracectx.TRACEPARENT_HEADER] = (
                tracectx.format_traceparent(ctx)
            )
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=headers,
        )
        timeout = timeout_s if timeout_s is not None else self.timeout_s
        started = time.time()
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                response = self._parse(resp.status, resp)
        except urllib.error.HTTPError as exc:
            # 4xx/5xx with a real response: parse it like any other.
            response = self._parse(exc.code, exc)
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            response = Response(
                status=0,
                transport_error=f"{type(exc).__name__}: {exc}",
            )
        if ctx is not None:
            tracectx.record_span(
                f"http {method} {path}",
                ctx,
                started,
                time.time(),
                attrs={"status": response.status},
            )
            # Server-collected spans ride home on terminal result
            # payloads; fold them into the local recorder so one export
            # holds the whole client/server/worker waterfall.
            shipped = response.body.get("spans")
            if isinstance(shipped, list):
                tracectx.ingest(shipped)
        return response

    @staticmethod
    def _parse(status: int, resp: Any) -> Response:
        retry_after: Optional[int] = None
        raw_retry = resp.headers.get("Retry-After")
        if raw_retry is not None:
            try:
                retry_after = int(raw_retry)
            except ValueError:
                retry_after = None
        raw = resp.read() or b""
        text = raw.decode("utf-8", errors="replace")
        try:
            body = json.loads(raw or b"{}")
        except ValueError:
            body = {}
        if not isinstance(body, dict):
            body = {"body": body}
        return Response(
            status=status, body=body, retry_after_s=retry_after, text=text
        )

    # ------------------------------------------------------------- #
    # Endpoint wrappers

    def submit(
        self,
        spec: Dict[str, Any],
        deadline_s: Optional[float] = None,
    ) -> Response:
        body: Dict[str, Any] = {"spec": spec}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self.request("POST", "/v1/experiments", body=body)

    def status(self, job_id: str) -> Response:
        return self.request("GET", f"/v1/experiments/{job_id}")

    def result(self, job_id: str) -> Response:
        return self.request("GET", f"/v1/experiments/{job_id}/result")

    def cancel(self, job_id: str) -> Response:
        return self.request("DELETE", f"/v1/experiments/{job_id}")

    def jobs(self) -> Response:
        return self.request("GET", "/v1/jobs")

    def stats(self) -> Response:
        return self.request("GET", "/v1/stats")

    def metrics(self) -> Response:
        return self.request("GET", "/metrics")

    def healthz(self) -> Response:
        return self.request("GET", "/healthz")

    def readyz(self) -> Response:
        return self.request("GET", "/readyz")

    # ------------------------------------------------------------- #

    def wait(
        self,
        job_id: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.1,
    ) -> Response:
        """Poll until the job reaches a terminal state (or timeout);
        returns the final *result* response."""
        deadline = time.monotonic() + timeout_s
        while True:
            resp = self.result(job_id)
            # 202 = still pending; anything else is terminal (including
            # transport drops, which the caller must judge).
            if resp.status != 202:
                return resp
            if time.monotonic() >= deadline:
                return resp
            time.sleep(poll_s)

    def stream_events(
        self,
        job_id: str,
        last_event_id: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Consume the job's server-sent-event stream.

        Yields one dict per SSE frame: ``{"id": ..., "event": ...,
        "data": <parsed JSON or raw string>}``.  Pass ``last_event_id``
        to resume after a disconnect without replaying delivered
        events.  The generator ends when the server closes the stream
        (terminal job state) or the socket drops.
        """
        headers: Dict[str, str] = {"Accept": "text/event-stream"}
        if last_event_id is not None:
            headers["Last-Event-ID"] = str(last_event_id)
        req = urllib.request.Request(
            self.base_url + f"/v1/experiments/{job_id}/events",
            headers=headers,
        )
        timeout = timeout_s if timeout_s is not None else self.timeout_s
        try:
            resp = urllib.request.urlopen(req, timeout=timeout)
        except urllib.error.HTTPError as exc:
            exc.close()
            return
        except (urllib.error.URLError, OSError, TimeoutError):
            return
        try:
            frame: Dict[str, Any] = {}
            for raw in resp:
                line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
                if not line:
                    if "data" in frame or "event" in frame:
                        data = frame.get("data", "")
                        try:
                            frame["data"] = json.loads(data)
                        except ValueError:
                            frame["data"] = data
                        yield frame
                    frame = {}
                    continue
                if line.startswith(":"):
                    continue  # keepalive comment
                field_name, _, value = line.partition(":")
                if value.startswith(" "):
                    value = value[1:]
                if field_name == "data" and "data" in frame:
                    frame["data"] += "\n" + value
                else:
                    frame[field_name] = value
        except (OSError, TimeoutError):
            return
        finally:
            resp.close()

    def wait_ready(self, timeout_s: float = 10.0) -> bool:
        """Poll ``/readyz`` until the server answers ready."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            resp = self.readyz()
            if resp.ok and resp.body.get("ready"):
                return True
            time.sleep(0.05)
        return False
