"""Load generation against the experiment server (``repro loadtest``).

Two classic load models, mubench-style reporting:

- **closed-loop**: ``concurrency`` workers each keep exactly one request
  outstanding (submit, wait for the terminal result, repeat).  Offered
  load adapts to service time, so this measures best-case latency at a
  given multiprogramming level.
- **open-loop**: submits arrive on a fixed schedule at ``rate_rps``
  regardless of completions -- the model that actually exposes queueing
  collapse, because offered load does not politely back off when the
  server slows down.

Every request is classified exactly once: ``ok`` (terminal result
delivered), ``shed`` (an explicit 429/503 refusal carrying
``Retry-After`` -- the server keeping its promises under overload, not
a failure), ``dropped`` (transport-level loss: connection refused or
reset), or ``failed`` (anything else -- the number the resilience
layer must keep bounded).  The summary row lands in the standard
``run_table.csv`` via :class:`~repro.obs.manifest.RunWriter`, with the
latency-budget arithmetic (``max_concurrent = budget / p95``) computed
from the observed tail.

When no server URL is given the harness self-hosts: it boots a real
:class:`~repro.server.app.ExperimentServer` on an ephemeral port with a
temporary state directory and drains it afterwards, so ``repro
loadtest`` is one command with no prior setup.
"""

from __future__ import annotations

import itertools
import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro import obs
from repro.obs.metrics import percentile
from repro.server.client import Response, ServerClient

#: Spec mix for --quick (single benchmark: dedup keeps CI cheap).
QUICK_BENCHMARKS = ("gcc",)
QUICK_REQUESTS = 6
QUICK_CONCURRENCY = 3

#: Default response-time budget for the report's concurrency math.
DEFAULT_LATENCY_BUDGET_S = 60.0


class _SelfHostedServer:
    """Context manager owning an in-process server for the test."""

    def __init__(self, workers: int = 2):
        self.workers = workers
        self.server = None
        self._thread: Optional[threading.Thread] = None
        self._tmp: Optional[tempfile.TemporaryDirectory] = None

    def __enter__(self) -> str:
        from repro.server.app import ExperimentServer
        from repro.server.queue import JobQueue
        from repro.server.state import ServerState

        self._tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
        state = ServerState(os.path.join(self._tmp.name, "state"))
        queue = JobQueue(state, workers=self.workers)
        self.server = ExperimentServer(queue, port=0)
        self.server.start(resume=False)
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()
        return self.server.url

    def __exit__(self, *exc_info: Any) -> None:
        if self.server is not None:
            self.server.shutdown_and_drain()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self._tmp is not None:
            self._tmp.cleanup()


def _classify(final: Response, submit: Response) -> str:
    if submit.shed:
        return "shed"
    if submit.dropped or final.dropped:
        return "dropped"
    # A request still pending (202) when the wait timed out is not a
    # success -- the latency budget was blown.
    if final.ok and final.status != 202:
        return "ok"
    return "failed"


def _one_request(
    client: ServerClient,
    spec: Dict[str, Any],
    wait_timeout_s: float,
) -> Dict[str, Any]:
    """Submit one experiment and ride it to a terminal state.

    Each request runs under its own root trace context, so its
    ``trace_id`` (stamped into the sample row, and from there into
    ``run_table.csv``) joins the client-side latency sample against
    the server-side spans for the same request.
    """
    started = time.monotonic()
    ctx = obs.tracectx.new_context()
    with obs.tracectx.activate(ctx):
        submit = client.submit(spec)
        if submit.status != 202:
            final = submit
        else:
            job_id = submit.body.get("job_id", "")
            final = client.wait(job_id, timeout_s=wait_timeout_s)
    latency_s = time.monotonic() - started
    return {
        "outcome": _classify(final, submit),
        "benchmark": spec.get("benchmark"),
        "latency_s": latency_s,
        "submit_status": submit.status,
        "final_status": final.status,
        "trace_id": ctx.trace_id,
    }


def run_loadtest(
    server_url: Optional[str] = None,
    mode: str = "closed",
    benchmarks: Sequence[str] = QUICK_BENCHMARKS,
    requests: int = QUICK_REQUESTS,
    concurrency: int = QUICK_CONCURRENCY,
    rate_rps: float = 2.0,
    wait_timeout_s: float = 180.0,
    latency_budget_s: float = DEFAULT_LATENCY_BUDGET_S,
    target: str = "L",
) -> Dict[str, Any]:
    """Drive the load model and return the summary report.

    ``server_url=None`` self-hosts an in-process server for the run.
    """
    if mode not in ("closed", "open"):
        from repro.errors import ConfigError

        raise ConfigError(
            f"loadtest mode must be 'closed' or 'open', got {mode!r}"
        )
    if server_url is None:
        with _SelfHostedServer() as url:
            return run_loadtest(
                server_url=url,
                mode=mode,
                benchmarks=benchmarks,
                requests=requests,
                concurrency=concurrency,
                rate_rps=rate_rps,
                wait_timeout_s=wait_timeout_s,
                latency_budget_s=latency_budget_s,
                target=target,
            )

    client = ServerClient(server_url)
    specs = [
        {"benchmark": benchmark, "target": target}
        for benchmark in benchmarks
    ]
    spec_cycle = itertools.cycle(specs)
    samples: List[Dict[str, Any]] = []
    samples_lock = threading.Lock()

    started = time.monotonic()
    if mode == "closed":
        counter = itertools.count()

        def worker() -> None:
            while True:
                i = next(counter)
                if i >= requests:
                    return
                with samples_lock:
                    spec = next(spec_cycle)
                sample = _one_request(client, spec, wait_timeout_s)
                with samples_lock:
                    samples.append(sample)

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(max(1, concurrency))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        interval = 1.0 / max(rate_rps, 1e-6)
        threads = []
        for i in range(requests):
            # Fixed arrival schedule anchored at t0: late completions
            # never delay the next arrival.
            wake = started + i * interval
            delay = wake - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            spec = next(spec_cycle)

            def fire(spec: Dict[str, Any] = spec) -> None:
                sample = _one_request(client, spec, wait_timeout_s)
                with samples_lock:
                    samples.append(sample)

            thread = threading.Thread(target=fire, daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=wait_timeout_s)
    elapsed_s = max(time.monotonic() - started, 1e-9)

    outcomes = {"ok": 0, "shed": 0, "dropped": 0, "failed": 0}
    for sample in samples:
        outcomes[sample["outcome"]] += 1
    ok_latencies = [
        s["latency_s"] for s in samples if s["outcome"] == "ok"
    ]
    p50_s = percentile(ok_latencies, 50.0)
    p95_s = percentile(ok_latencies, 95.0)
    issued = len(samples)
    row: Dict[str, Any] = {
        "benchmark": "+".join(benchmarks),
        "target": target,
        "mode": mode,
        "requests": issued,
        "concurrency": concurrency if mode == "closed" else None,
        "rate_rps": rate_rps if mode == "open" else None,
        "ok": outcomes["ok"],
        "shed": outcomes["shed"],
        "dropped": outcomes["dropped"],
        "failed": outcomes["failed"],
        "elapsed_s": round(elapsed_s, 3),
        "throughput_rps": round(outcomes["ok"] / elapsed_s, 4),
        "p50_latency_ms": round(p50_s * 1000.0, 1),
        "p95_latency_ms": round(p95_s * 1000.0, 1),
        "failure_rate": round(outcomes["failed"] / max(1, issued), 4),
        "shed_rate": round(outcomes["shed"] / max(1, issued), 4),
        "latency_budget_s": latency_budget_s,
        "max_concurrent_in_budget": (
            int(latency_budget_s / p95_s) if p95_s > 0 else None
        ),
    }
    row = {k: v for k, v in row.items() if v is not None}
    report = {
        "server": server_url,
        "row": row,
        "samples": samples,
    }
    obs.log_event(
        "loadtest_done",
        level="info",
        **{
            k: row[k]
            for k in (
                "mode",
                "requests",
                "ok",
                "shed",
                "dropped",
                "failed",
                "throughput_rps",
                "p95_latency_ms",
            )
            if k in row
        },
    )
    return report
