"""The wire format for a submitted experiment.

Clients describe a cell as a flat JSON object; the server turns it into
an :class:`~repro.harness.parallel.ExperimentJob` deterministically, so
the *spec* (not the job object) is what the accept journal persists --
``repro serve --resume`` rebuilds bit-identical jobs from replayed
specs.

The spec surface mirrors the sweeps the harness already runs
(:mod:`repro.harness.figures`): benchmark, selection target, input
sets, and the paper's three sensitivity knobs (idle energy factor,
memory latency, L2 geometry).  Unknown keys are rejected, not ignored:
a typoed knob silently running the default configuration would poison
the content-addressed dedup.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.config import EnergyConfig, MachineConfig
from repro.errors import ConfigError, WorkloadError
from repro.harness.parallel import ExperimentJob
from repro.pthsel.targets import Target
from repro.workloads.registry import BENCHMARK_NAMES

#: Every key a spec may carry.
SPEC_KEYS = frozenset(
    {
        "benchmark",
        "target",
        "profile_input",
        "run_input",
        "include_branch_pthreads",
        "idle_factor",
        "memory_latency",
        "l2_kb",
        "l2_latency",
        "tag",
    }
)

_TARGET_LABELS = {t.label: t for t in Target}


def normalize_spec(raw: Any) -> Dict[str, Any]:
    """Validate a client-submitted spec and return its canonical form.

    The canonical form drops keys at their defaults so that two specs
    naming the same cell normalize identically (and therefore dedup and
    journal identically).
    """
    if not isinstance(raw, dict):
        raise ConfigError(
            f"experiment spec must be a JSON object, got {type(raw).__name__}"
        )
    unknown = sorted(set(raw) - SPEC_KEYS)
    if unknown:
        raise ConfigError(
            f"unknown spec key(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(SPEC_KEYS))})"
        )
    benchmark = raw.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise ConfigError("spec requires a 'benchmark' string")
    if benchmark not in BENCHMARK_NAMES:
        raise WorkloadError(
            f"unknown benchmark {benchmark!r} "
            f"(available: {', '.join(BENCHMARK_NAMES)})"
        )
    spec: Dict[str, Any] = {"benchmark": benchmark}

    target = raw.get("target", Target.LATENCY.label)
    if target not in _TARGET_LABELS:
        raise ConfigError(
            f"unknown target {target!r} "
            f"(allowed: {', '.join(sorted(_TARGET_LABELS))})"
        )
    if target != Target.LATENCY.label:
        spec["target"] = target

    for key, default in (("profile_input", "train"), ("run_input", "train")):
        value = raw.get(key, default)
        if not isinstance(value, str) or not value:
            raise ConfigError(f"spec key {key!r} must be a string")
        if value != default:
            spec[key] = value

    if raw.get("include_branch_pthreads"):
        spec["include_branch_pthreads"] = True

    for key, kinds in (
        ("idle_factor", (int, float)),
        ("memory_latency", (int,)),
        ("l2_kb", (int,)),
        ("l2_latency", (int,)),
    ):
        if key not in raw or raw[key] is None:
            continue
        value = raw[key]
        if isinstance(value, bool) or not isinstance(value, kinds):
            raise ConfigError(
                f"spec key {key!r} must be a number, got {value!r}"
            )
        spec[key] = value
    if ("l2_kb" in spec) != ("l2_latency" in spec):
        raise ConfigError("'l2_kb' and 'l2_latency' must be set together")

    tag = raw.get("tag")
    if tag is not None:
        if not isinstance(tag, dict):
            raise ConfigError("spec key 'tag' must be an object")
        if tag:
            spec["tag"] = {str(k): tag[k] for k in sorted(tag)}
    return spec


def job_from_spec(spec: Dict[str, Any]) -> ExperimentJob:
    """Build the engine job a (normalized) spec describes."""
    machine = None
    if "memory_latency" in spec or "l2_kb" in spec:
        machine = MachineConfig()
        if "memory_latency" in spec:
            machine = machine.with_memory_latency(int(spec["memory_latency"]))
        if "l2_kb" in spec:
            machine = machine.scaled_l2(
                int(spec["l2_kb"]) * 1024, int(spec["l2_latency"])
            )
    energy = None
    if "idle_factor" in spec:
        energy = EnergyConfig().with_idle_factor(float(spec["idle_factor"]))
    return ExperimentJob(
        spec["benchmark"],
        target=_TARGET_LABELS[spec.get("target", Target.LATENCY.label)],
        profile_input=spec.get("profile_input", "train"),
        run_input=spec.get("run_input", "train"),
        machine=machine,
        energy=energy,
        include_branch_pthreads=bool(spec.get("include_branch_pthreads")),
        tag=dict(spec.get("tag") or {}),
    )
