"""Deterministic, seeded fault injection for robustness testing.

The harness's recovery paths (retry/backoff, pool rebuilds, cache
degradation, checkpoint/resume) have to be *provable*, not hopeful, so
this registry lets a run inject failures at named sites with a seeded,
reproducible schedule:

- ``simcache.read`` / ``simcache.write``  -- the persistent simulation
  cache raises ``OSError`` (exercises the degrade-to-no-cache path);
- ``worker.run``      -- an experiment job crashes in its worker process
  (exercises retry with backoff);
- ``worker.start``    -- a pool's worker initializer crashes, breaking
  the whole pool (exercises ``BrokenProcessPool`` rebuild + resubmit);
- ``worker.hang``     -- an experiment job sleeps forever (exercises
  per-job wall-clock timeouts);
- ``pipeline.step``   -- the timing simulator crashes mid-simulation;
- ``manifest.write``  -- writing run artifacts raises ``OSError``;
- ``server.accept`` / ``queue.enqueue`` / ``server.respond`` -- the
  experiment server drops a connection before parsing, fails an enqueue
  before acknowledging, or drops the connection mid-response
  (exercises admission control, exactly-once accept journaling, and
  client retry behavior).

A fault *draw* is a pure function of ``(seed, site, key)`` -- SHA-256
hashed to a uniform sample in [0, 1) -- so the same plan over the same
grid injects the same faults, and a retried job (whose key includes the
attempt number) draws a fresh, independent sample: recovery converges
instead of permafailing.

Plans come from ``REPRO_FAULTS`` (comma-separated ``SITE:prob[:seed]``
specs) or the CLI ``--inject-fault`` flag; :func:`encode_plan` ships the
active plan to pool workers.  Every injection increments the
``faults.injected.<site>`` counter and emits a telemetry event, so the
chaos report can account for every fault fired anywhere in the tree.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import os
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro import obs
from repro.errors import ConfigError, FaultInjectedError

#: Every named injection site the stack consults.
SITES = (
    "simcache.read",
    "simcache.write",
    "worker.run",
    "worker.start",
    "worker.hang",
    "pipeline.step",
    "manifest.write",
    # Experiment-server sites (repro serve): drop the connection before
    # the request is parsed, fail the enqueue after admission but before
    # the accept is acknowledged, and drop the connection while writing
    # the response (the client never learns its request's fate).
    "server.accept",
    "queue.enqueue",
    "server.respond",
)

ENV_VAR = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: fire at ``site`` with ``probability``."""

    site: str
    probability: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{', '.join(SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"fault probability for {self.site} must be in [0, 1], "
                f"got {self.probability}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``SITE:prob[:seed]`` (the CLI / env spec syntax)."""
        parts = text.strip().split(":")
        if len(parts) not in (2, 3):
            raise ConfigError(
                f"bad fault spec {text!r}; expected SITE:prob[:seed]"
            )
        site = parts[0]
        try:
            probability = float(parts[1])
            seed = int(parts[2]) if len(parts) == 3 else 0
        except ValueError:
            raise ConfigError(
                f"bad fault spec {text!r}; expected SITE:prob[:seed] "
                f"with a float probability and integer seed"
            ) from None
        return cls(site=site, probability=probability, seed=seed)

    def encode(self) -> str:
        return f"{self.site}:{self.probability}:{self.seed}"


def unit(material: str) -> float:
    """A deterministic uniform sample in [0, 1) from ``material``.

    The single source of pseudo-randomness for every robustness
    mechanism that must replay identically across processes, retries,
    and ``--resume``: fault draws here, retry-backoff jitter in
    :class:`repro.harness.parallel.RetryPolicy`.
    """
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def draw(spec: FaultSpec, key: object) -> bool:
    """The pure Bernoulli sample for ``(spec, key)``.

    Deterministic across processes and runs: hash the seed, site, and
    key to a uniform float and compare against the probability.
    """
    return unit(f"{spec.seed}|{spec.site}|{key}") < spec.probability


class FaultPlan:
    """An active set of fault specs plus per-site injection bookkeeping."""

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.by_site: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site in self.by_site:
                raise ConfigError(
                    f"duplicate fault spec for site {spec.site!r}"
                )
            self.by_site[spec.site] = spec
        self._sequence: Dict[str, int] = {}

    @property
    def specs(self) -> List[FaultSpec]:
        return list(self.by_site.values())

    def encode(self) -> List[str]:
        return [spec.encode() for spec in self.specs]

    def site_active(self, site: str) -> bool:
        spec = self.by_site.get(site)
        return spec is not None and spec.probability > 0.0

    def should_fault(self, site: str, key: object = None) -> bool:
        """Sample the site; on injection, count it and emit an event.

        ``key`` defaults to a per-site sequence number (deterministic
        within one process's lifetime); pass an explicit key -- e.g.
        ``"<cell>:<attempt>"`` -- for draws that must be reproducible
        across processes and retries.  The ambient :func:`scoped` scope
        (set by workers to ``"<cell>:<attempt>"``) is mixed into every
        key, so a deterministic replay under retry -- e.g. the pipeline
        reaching the same cycle -- draws a fresh sample and converges.
        """
        spec = self.by_site.get(site)
        if spec is None or spec.probability <= 0.0:
            return False
        if key is None:
            seq = self._sequence.get(site, 0)
            self._sequence[site] = seq + 1
            key = seq
        scope = current_scope()
        if scope is not None:
            key = f"{scope}|{key}"
        if not draw(spec, key):
            return False
        obs.counters.counter(f"faults.injected.{site}").add()
        obs.log_event(
            "fault_injected",
            level="warning",
            site=site,
            key=str(key),
            probability=spec.probability,
            seed=spec.seed,
        )
        return True


# --------------------------------------------------------------------- #
# Process-wide plan.  ``None`` means "not yet resolved": the first use
# reads REPRO_FAULTS.  An explicitly configured empty plan disables
# injection regardless of the environment.
# --------------------------------------------------------------------- #

_plan: Optional[FaultPlan] = None
_resolved = False
#: Per-thread draw scope: the experiment server runs jobs on worker
#: threads, so a process-global scope would let concurrent jobs clobber
#: each other's draw keys.  Pool worker *processes* each set their own.
_scope_local = threading.local()


def current_scope() -> Optional[str]:
    return getattr(_scope_local, "scope", None)


@contextlib.contextmanager
def scoped(scope: Optional[str]) -> Iterator[None]:
    """Mix ``scope`` into every draw key while the context is active.

    The parallel engine's workers scope each job to
    ``"<cell_key>:<attempt>"`` so that faults inside deterministic replays
    (the timing simulator re-reaching the same cycle, the cache re-reading
    the same key) re-draw on retry instead of permafailing.  The scope is
    thread-local: concurrent server worker threads each carry their own."""
    previous = current_scope()
    _scope_local.scope = scope
    try:
        yield
    finally:
        _scope_local.scope = previous

SpecLike = Union[FaultSpec, str]


def _to_specs(specs: Sequence[SpecLike]) -> List[FaultSpec]:
    return [
        spec if isinstance(spec, FaultSpec) else FaultSpec.parse(spec)
        for spec in specs
    ]


def configure(specs: Sequence[SpecLike]) -> FaultPlan:
    """Install a fault plan process-wide (pass ``[]`` to disable)."""
    global _plan, _resolved
    _plan = FaultPlan(_to_specs(specs))
    _resolved = True
    return _plan


def reset() -> None:
    """Back to the unresolved default (environment-controlled)."""
    global _plan, _resolved
    _plan = None
    _resolved = False


def current_plan() -> Optional[FaultPlan]:
    """The active plan, resolving ``REPRO_FAULTS`` on first use."""
    global _plan, _resolved
    if not _resolved:
        _resolved = True
        env = os.environ.get(ENV_VAR, "").strip()
        if env:
            _plan = FaultPlan(
                [FaultSpec.parse(part) for part in env.split(",") if part]
            )
    return _plan


def encode_plan() -> List[str]:
    """The active plan as spec strings (worker-process transport)."""
    plan = current_plan()
    return plan.encode() if plan is not None else []


@contextlib.contextmanager
def active(specs: Sequence[SpecLike]) -> Iterator[FaultPlan]:
    """Temporarily install a plan (chaos runs and tests).

    This is the *only* supported way for library callers (the chaos
    harness, the server test suite) to run under injected faults: the
    previous plan -- including the unresolved environment-controlled
    default -- is restored on exit, so a plan can never leak across
    cases.  Plain :func:`configure` is for process setup (CLI, pool
    worker initializers), which pairs it with :func:`reset`.
    """
    global _plan, _resolved
    previous, previous_resolved = _plan, _resolved
    plan = configure(specs)
    try:
        yield plan
    finally:
        _plan, _resolved = previous, previous_resolved


@contextlib.contextmanager
def pristine() -> Iterator[None]:
    """No injection while active, whatever the ambient plan or
    environment says.  Chaos harnesses run their fault-free reference
    grids under this, so a CLI ``--inject-fault`` (or a leaked test
    plan) cannot poison the reference."""
    with active([]):
        yield


# --------------------------------------------------------------------- #
# Call-site helpers.
# --------------------------------------------------------------------- #


def site_active(site: str) -> bool:
    """Cheap pre-check call sites hoist out of hot loops."""
    plan = current_plan()
    return plan is not None and plan.site_active(site)


def should_fault(site: str, key: object = None) -> bool:
    """Sample ``site``; True means the caller must now fail."""
    plan = current_plan()
    return plan is not None and plan.should_fault(site, key)


def raise_if(site: str, key: object = None) -> None:
    """Raise :class:`FaultInjectedError` when the site fires."""
    if should_fault(site, key):
        raise FaultInjectedError(
            f"injected fault at {site} (key={key!r})", site=site,
            key=str(key),
        )


def raise_os_if(site: str, key: object = None) -> None:
    """Raise ``OSError(EIO)`` when the site fires (I/O fault sites)."""
    if should_fault(site, key):
        raise OSError(
            errno.EIO, f"injected fault at {site} (key={key!r})"
        )


def injected_counts() -> Dict[str, int]:
    """Injections recorded in this process's counters, per site."""
    snapshot = obs.counters.snapshot()
    prefix = "faults.injected."
    return {
        name[len(prefix):]: int(value)
        for name, value in snapshot.items()
        if name.startswith(prefix) and value
    }
