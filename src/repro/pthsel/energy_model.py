"""PTHSEL+E's energy model (Table 2, equations E1-E8).

EADVagg(p) = EREDagg(p) - EOHagg(p)                              (E1)
EREDagg(p) = LADVagg(p) * Eidle/c                                (E2)
EOHagg(p)  = DCtrig(p) * EOH(p)                                  (E3)
EOH(p)     = Ef(p) + Ex(p) + EL2(p)                              (E4)
Ef(p)      = ceil(SIZE(p)/BWSEQproc) * Ef/a                      (E5)
Ex(p)      = SIZE*Exall/a + ALU*Exalu/a + LOAD*Exload/a          (E6)
EL2(p)     = sum over p-loads of MISSRATE_L1 * EL2/a             (E7)

The six constants (E8) are external parameters; here they come from the
same calibration as the simulator's Wattch model
(:meth:`repro.energy.wattch.EnergyModel.pthsel_constants`), so model and
measurement agree by construction -- the paper's "published by the
hardware vendor or reverse engineered" scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.critpath.classify import LoadClassification
from repro.isa.instruction import StaticInst


@dataclass(frozen=True)
class EnergyParams:
    """The equation E8 constants, in joules per access / per cycle."""

    e_fetch: float
    e_xall: float
    e_xalu: float
    e_xload: float
    e_l2: float
    e_idle: float

    @classmethod
    def from_constants(cls, constants: Dict[str, float]) -> "EnergyParams":
        return cls(
            e_fetch=constants["e_fetch"],
            e_xall=constants["e_xall"],
            e_xalu=constants["e_xalu"],
            e_xload=constants["e_xload"],
            e_l2=constants["e_l2"],
            e_idle=constants["e_idle"],
        )


class PthselEnergyModel:
    """Evaluates EOH/EADVagg for p-thread candidates."""

    def __init__(
        self,
        params: EnergyParams,
        bw_seq_proc: float,
        classification: LoadClassification,
    ) -> None:
        self.params = params
        self.bw_seq_proc = bw_seq_proc
        self.classification = classification

    def fetch_energy(self, size: int) -> float:
        """Equation E5: I-cache blocks consumed by one spawn."""
        blocks = math.ceil(size / self.bw_seq_proc)
        return blocks * self.params.e_fetch

    def execute_energy(self, body: List[StaticInst]) -> float:
        """Equation E6: rename/window/regfile plus ALU and load extras."""
        size = len(body)
        n_loads = sum(1 for inst in body if inst.op.is_load)
        n_alu = size - n_loads
        p = self.params
        return size * p.e_xall + n_alu * p.e_xalu + n_loads * p.e_xload

    def l2_energy(self, body: List[StaticInst]) -> float:
        """Equation E7: each p-load reaches the L2 at its main-program L1
        miss rate (the target load itself is a near-certain L2 access)."""
        total = 0.0
        for inst in body:
            if inst.op.is_load:
                total += self.classification.miss_rate_l1(inst.pc)
        return total * self.params.e_l2

    def eoh(self, body: List[StaticInst]) -> float:
        """Per dynamic instance energy overhead (E4)."""
        return (
            self.fetch_energy(len(body))
            + self.execute_energy(body)
            + self.l2_energy(body)
        )

    def eadv_agg(
        self,
        body: List[StaticInst],
        ladv_agg: float,
        dc_trig: int,
    ) -> Dict[str, float]:
        """Aggregate energy advantage (E1-E3) plus its pieces."""
        ered_agg = ladv_agg * self.params.e_idle
        eoh_agg = dc_trig * self.eoh(body)
        return {
            "ered_agg": ered_agg,
            "eoh_agg": eoh_agg,
            "eadv_agg": ered_agg - eoh_agg,
        }
