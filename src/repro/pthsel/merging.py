"""Common-trigger merging post-pass (Section 2.2).

Linear p-threads with the same trigger -- typically the two sides of a
control fork, like the ``rxid``/``g_rxid`` computations of the paper's
Figure 1 -- are merged into one composite p-thread: shared prefix once,
then both suffixes.  Merging lowers overhead (the shared induction is
fetched and executed once) without hurting latency tolerance.

Merging is only legal when the second suffix does not read a register the
first suffix wrote (it would observe the wrong value); illegal merges are
left as separate p-threads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import StaticInst
from repro.pthsel.pthread import StaticPThread


def _inst_key(inst: StaticInst) -> Tuple:
    return (inst.pc, inst.op, inst.rd, inst.rs1, inst.rs2, inst.imm)


def _common_prefix(a: Sequence[StaticInst],
                   b: Sequence[StaticInst]) -> int:
    n = 0
    for x, y in zip(a, b):
        if _inst_key(x) != _inst_key(y):
            break
        n += 1
    return n


def _suffix_conflicts(first_suffix: Sequence[StaticInst],
                      second_suffix: Sequence[StaticInst]) -> bool:
    """Would appending ``second_suffix`` after ``first_suffix`` corrupt its
    dataflow?  True when the second suffix reads a register last written
    by the first suffix (instead of by the prefix or a live-in)."""
    poisoned: Set[int] = {
        inst.dest for inst in first_suffix if inst.dest is not None
    }
    for inst in second_suffix:
        for src in inst.sources:
            if src in poisoned:
                return True
        if inst.dest is not None:
            poisoned.discard(inst.dest)  # rewritten by the second suffix
    return False


def try_merge(a: StaticPThread, b: StaticPThread,
              merged_id: int) -> Optional[StaticPThread]:
    """Merge two same-trigger p-threads, or return None if illegal."""
    if a.trigger_pc != b.trigger_pc:
        return None
    prefix_len = _common_prefix(a.body, b.body)
    suffix_a = list(a.body[prefix_len:])
    suffix_b = list(b.body[prefix_len:])
    if _suffix_conflicts(suffix_a, suffix_b):
        return None
    body = tuple(list(a.body[:prefix_len]) + suffix_a + suffix_b)
    predicted: Dict[str, float] = {}
    for key in set(a.predicted) | set(b.predicted):
        predicted[key] = a.predicted.get(key, 0.0) + b.predicted.get(key, 0.0)
    # DCtrig is shared, not additive: both halves spawn on the same trigger.
    if "dc_trig" in predicted:
        predicted["dc_trig"] = max(
            a.predicted.get("dc_trig", 0.0), b.predicted.get("dc_trig", 0.0)
        )
    return StaticPThread(
        pthread_id=merged_id,
        trigger_pc=a.trigger_pc,
        body=body,
        target_pcs=tuple(dict.fromkeys(a.target_pcs + b.target_pcs)),
        predicted=predicted,
    )


def merge_pthreads(pthreads: List[StaticPThread]) -> List[StaticPThread]:
    """Greedily merge same-trigger p-threads; returns the final set."""
    by_trigger: Dict[int, List[StaticPThread]] = {}
    for pthread in pthreads:
        by_trigger.setdefault(pthread.trigger_pc, []).append(pthread)

    result: List[StaticPThread] = []
    next_id = max((p.pthread_id for p in pthreads), default=0) + 1
    for trigger_pc, group in sorted(by_trigger.items()):
        pool = list(group)
        merged_any = True
        while merged_any and len(pool) > 1:
            merged_any = False
            for i in range(len(pool)):
                for j in range(i + 1, len(pool)):
                    merged = try_merge(pool[i], pool[j], next_id)
                    if merged is not None:
                        next_id += 1
                        pool = (
                            [p for k, p in enumerate(pool) if k not in (i, j)]
                            + [merged]
                        )
                        merged_any = True
                        break
                if merged_any:
                    break
        result.extend(pool)
    return result
