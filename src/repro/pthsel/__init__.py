"""PTHSEL and PTHSEL+E: analytical p-thread selection.

This package is the paper's primary contribution.  It implements:

- the original PTHSEL latency model (Table 1, equations L1-L7) with its
  flat cycle-for-cycle load cost assumption ("O" p-threads);
- the criticality-based load cost extension (Section 4.1), which feeds a
  per-problem-load latency-to-execution-time function from
  :mod:`repro.critpath` into the same equations ("L" p-threads);
- the explicit energy model (Table 2, equations E1-E8) and the composite
  latency/energy objective (equations C1-C3) parameterized by the weight
  W, yielding energy-targeted ("E"), ED-targeted ("P") and ED^2-targeted
  ("P2") p-threads;
- the slice-tree search with overlap discounting and the common-trigger
  merging post-pass.
"""

from repro.pthsel.framework import SelectionResult, select_pthreads
from repro.pthsel.pthread import StaticPThread
from repro.pthsel.targets import Target

__all__ = ["SelectionResult", "StaticPThread", "Target", "select_pthreads"]
