"""Selection targets: what quantity p-threads should optimize.

The composition weight W (equation C2) is the exponential weight of
latency in the composite objective: 1 optimizes latency, 0 energy, 0.5
ED, and 0.67 ED^2.  The ORIGINAL target reproduces pre-extension PTHSEL:
latency-targeted with the flat cycle-for-cycle load cost model.
"""

from __future__ import annotations

import enum


class Target(enum.Enum):
    """P-thread selection targets, named as in the paper's figures."""

    #: Original PTHSEL: latency with the flat miss-cost model (O).
    ORIGINAL = "O"
    #: PTHSEL+E latency target with criticality-based miss cost (L).
    LATENCY = "L"
    #: Energy target (E).
    ENERGY = "E"
    #: Energy-delay target (P).
    ED = "P"
    #: Energy-delay-squared target (P2).
    ED2 = "P2"

    @property
    def composition_weight(self) -> float:
        """The W parameter of equation C2."""
        return {
            Target.ORIGINAL: 1.0,
            Target.LATENCY: 1.0,
            Target.ENERGY: 0.0,
            Target.ED: 0.5,
            Target.ED2: 0.67,
        }[self]

    @property
    def uses_flat_load_cost(self) -> bool:
        """Only the ORIGINAL target keeps PTHSEL's one-for-one assumption."""
        return self is Target.ORIGINAL

    @property
    def label(self) -> str:
        return self.value
