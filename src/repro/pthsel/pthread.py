"""Static p-thread representation and body optimization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.instruction import StaticInst
from repro.isa.opcodes import Op


@dataclass(frozen=True)
class StaticPThread:
    """One selected static p-thread.

    ``body`` holds executable instruction templates (optimized: merged
    induction steps may carry immediates that differ from the original
    static instructions, the paper's ``i+=2`` idiom).  ``target_pcs``
    are the problem loads this p-thread prefetches (more than one after
    merging).  ``predicted`` records the model's estimates for the
    validation study (Table 3).
    """

    pthread_id: int
    trigger_pc: int
    body: Tuple[StaticInst, ...]
    target_pcs: Tuple[int, ...]
    predicted: Dict[str, float] = field(default_factory=dict)
    #: Branch pre-execution: when > 0, the body ends in a branch whose
    #: outcome is hinted to the ``hint_offset``-th future dynamic instance
    #: of the target PC (0 = ordinary prefetching p-thread).
    hint_offset: int = 0

    @property
    def is_branch_pthread(self) -> bool:
        return self.hint_offset > 0

    @property
    def size(self) -> int:
        return len(self.body)

    @property
    def n_loads(self) -> int:
        return sum(1 for inst in self.body if inst.op.is_load)

    @property
    def n_alu(self) -> int:
        return sum(1 for inst in self.body if not inst.op.is_load)

    def describe(self) -> str:
        lines = [f"p-thread #{self.pthread_id} trigger=pc{self.trigger_pc} "
                 f"targets={list(self.target_pcs)}"]
        lines.extend(f"  {inst}" for inst in self.body)
        return "\n".join(lines)


def optimize_body(body: List[StaticInst]) -> List[StaticInst]:
    """Collapse runs of self-incrementing ADDIs into one larger step.

    This is the paper's induction-unrolling optimization (``i++; i++`` ->
    ``i += 2``): consecutive ``addi r, r, k`` on the same register merge
    into a single ``addi r, r, n*k``, which is what makes array-walk
    lookahead nearly free.  Non-adjacent occurrences are left alone
    (intervening instructions may read the intermediate value).
    """
    optimized: List[StaticInst] = []
    for inst in body:
        if (
            inst.op is Op.ADDI
            and inst.rd == inst.rs1
            and optimized
            and optimized[-1].op is Op.ADDI
            and optimized[-1].rd == inst.rd
            and optimized[-1].rs1 == inst.rs1
        ):
            prev = optimized.pop()
            merged = StaticInst(
                pc=prev.pc,
                op=Op.ADDI,
                rd=prev.rd,
                rs1=prev.rs1,
                imm=(prev.imm or 0) + (inst.imm or 0),
                annotation=prev.annotation or "merged-induction",
            )
            optimized.append(merged)
        else:
            optimized.append(inst)
    return optimized
