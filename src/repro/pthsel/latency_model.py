"""PTHSEL's latency model (Table 1, equations L1-L7).

LADVagg(p) = LREDagg(p) - LOHagg(p)                              (L1)
LOHagg(p)  = DCtrig(p) * LOH(p)                                  (L2)
LREDagg(p) = DCpt-cm(p) * LRED(p)                                (L3)
LOH(p)     = (SIZE(p)/BWSEQproc) * (BWSEQmt/BWSEQproc)           (L4)

External parameters (L5, L6): processor sequencing width BWSEQproc and
memory latency Lcm come from the machine; the main thread's unoptimized
sequencing bandwidth BWSEQmt (its IPC) comes from a baseline run.

LRED -- the latency tolerated per dynamic instance -- is the headroom
between how long the main thread takes to travel from the trigger to the
load and how long the p-thread needs to compute and issue the same load.
With the flat cost model one tolerated cycle is one saved cycle, capped
at the miss latency; the criticality model maps tolerated latency
through the per-load cost function from :mod:`repro.critpath.loadcost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.config import MachineConfig
from repro.critpath.classify import LoadClassification
from repro.critpath.graph import service_latency
from repro.critpath.loadcost import FlatLoadCost, LoadCostFunction
from repro.isa.instruction import StaticInst


@dataclass
class LatencyParams:
    """External per-machine and per-program parameters (L5, L6)."""

    bw_seq_proc: float
    memory_latency: float
    bw_seq_mt: float  # the program's unoptimized IPC

    @classmethod
    def from_machine(
        cls, machine: MachineConfig, baseline_ipc: float
    ) -> "LatencyParams":
        return cls(
            bw_seq_proc=float(machine.width),
            memory_latency=float(machine.memory_latency),
            bw_seq_mt=max(1e-3, baseline_ipc),
        )


class LatencyModel:
    """Evaluates LRED/LOH/LADVagg for p-thread candidates."""

    def __init__(
        self,
        params: LatencyParams,
        machine: MachineConfig,
        classification: LoadClassification,
        embedded_latency_factor: float = 1.4,
    ) -> None:
        self.params = params
        self.machine = machine
        self.classification = classification
        self.embedded_latency_factor = embedded_latency_factor
        self._expected_load_latency: Dict[int, float] = {}

    # ------------------------------------------------------------------ #

    def expected_load_latency(self, pc: int) -> float:
        """Mean service latency (wait) of a static load, from the profile.

        Uses the merge-aware service classification, so a load that
        habitually waits on an in-flight fill (e.g. the second field read
        of a freshly chased node) counts as a full-latency wait even
        though it never initiates a miss itself.
        """
        cached = self._expected_load_latency.get(pc)
        if cached is not None:
            return cached
        machine = self.machine
        latencies = {
            "l1": float(service_latency("l1", machine)),
            "l2": float(service_latency("l2", machine)),
            "mem": float(service_latency("mem", machine)),
        }
        expected = self.classification.expected_service_latency(
            pc, latencies, default=latencies["l1"]
        )
        self._expected_load_latency[pc] = expected
        return expected

    def pthread_compute_time(self, body: List[StaticInst],
                             target_pc: int,
                             trigger: Optional[StaticInst] = None) -> float:
        """Cycles from spawn until the p-thread issues the target load.

        P-threads are sequenced at one instruction per cycle (SIZE cycles
        of fetch) and their embedded non-target loads serialize their own
        expected latencies on top (the mcf effect: every level of pointer
        unrolling adds a missing load to the p-thread's own critical
        path).  When the *trigger itself* is a load, the body's live-in
        value is only available once that load completes, so its expected
        latency delays the whole p-thread -- this is what makes slices
        rooted just below a missing load (a pointer-chase step) worthless.
        """
        size = float(len(body))
        embedded = 0.0
        seen_target = False
        for inst in body:
            if inst.op.is_load:
                if inst.pc == target_pc and not seen_target:
                    seen_target = True
                    continue  # the target itself is the prefetch
                embedded += (
                    self.expected_load_latency(inst.pc)
                    * self.embedded_latency_factor
                )
        if trigger is not None and trigger.op.is_load:
            # A load trigger delays the p-thread's live-in by its own
            # (queue-inflated) service time; candidates rooted directly
            # under a missing load can essentially never win, because the
            # demand load's issue is gated by the same producer.
            embedded += (
                self.expected_load_latency(trigger.pc)
                * self.embedded_latency_factor
            )
        return size + embedded

    def lred(
        self,
        body: List[StaticInst],
        target_pc: int,
        avg_distance: float,
        trigger: Optional[StaticInst] = None,
    ) -> float:
        """Latency tolerated per dynamic instance (before the cost map).

        ``avg_distance`` is the mean trigger-to-load distance in dynamic
        main-thread instructions, mined from the slice tree.
        """
        main_time = avg_distance / self.params.bw_seq_mt
        pth_time = self.pthread_compute_time(body, target_pc, trigger)
        return max(0.0, main_time - pth_time)

    def loh(self, size: int) -> float:
        """Per-instance latency overhead (L4): fetch-bandwidth contention
        discounted by main-thread sequencing utilization."""
        bw = self.params.bw_seq_proc
        return (size / bw) * (self.params.bw_seq_mt / bw)

    # ------------------------------------------------------------------ #

    def ladv_agg(
        self,
        body: List[StaticInst],
        target_pc: int,
        avg_distance: float,
        dc_trig: int,
        dc_ptcm: int,
        cost_function: Union[FlatLoadCost, LoadCostFunction],
        trigger: Optional[StaticInst] = None,
    ) -> Dict[str, float]:
        """Aggregate latency advantage (L1-L3) plus its pieces.

        Returns a dict with ``lred`` (tolerated cycles per instance),
        ``gain`` (execution cycles saved per covered miss after the cost
        map), ``loh``, ``lred_agg``, ``loh_agg`` and ``ladv_agg``.
        """
        tolerated = self.lred(body, target_pc, avg_distance, trigger)
        if isinstance(cost_function, FlatLoadCost):
            gain = min(tolerated, self.params.memory_latency)
        else:
            gain = cost_function.gain(tolerated)
        loh = self.loh(len(body))
        lred_agg = dc_ptcm * gain
        loh_agg = dc_trig * loh
        return {
            "lred": tolerated,
            "gain": gain,
            "loh": loh,
            "lred_agg": lred_agg,
            "loh_agg": loh_agg,
            "ladv_agg": lred_agg - loh_agg,
        }
