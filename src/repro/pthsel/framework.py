"""Top-level PTHSEL / PTHSEL+E entry point.

``select_pthreads`` runs the full pipeline the paper describes: profile
the trace (functional cache + branch classification), identify problem
loads, build per-load cost functions (flat for the ORIGINAL target,
criticality-based otherwise), mine slice trees, evaluate and select
candidates per tree under the target's composite objective, and merge
common-trigger selections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.config import EnergyConfig, MachineConfig, SelectionConfig
from repro.critpath.classify import (
    LoadClassification,
    analysis_memo_enabled,
    classify_trace_cached,
    profile_geometry_key,
)
from repro.critpath.loadcost import FlatLoadCost, build_cost_functions
from repro.energy.wattch import EnergyModel
from repro.frontend.trace import Trace
from repro.pthsel.composite import CompositeParams
from repro.pthsel.energy_model import EnergyParams, PthselEnergyModel
from repro.pthsel.latency_model import LatencyModel, LatencyParams
from repro.pthsel.merging import merge_pthreads
from repro.pthsel.pthread import StaticPThread
from repro.pthsel.selector import TreeSelector
from repro.pthsel.targets import Target
from repro.slicer.problem_loads import identify_problem_loads
from repro.slicer.slicetree import build_slice_tree


@dataclass
class BaselineEstimates:
    """Per-application external parameters (L6 and C2).

    ``ipc`` is the unoptimized main thread's sequencing bandwidth
    (BWSEQmt); ``l0`` its execution time in cycles; ``e0`` its energy in
    joules.  These normally come from a baseline simulation; the paper
    notes that in practice only the E0/L0 ratio matters.
    """

    ipc: float
    l0: float
    e0: float


@dataclass
class SelectionResult:
    """The output of one PTHSEL(+E) run."""

    target: Target
    pthreads: List[StaticPThread]
    problem_pcs: List[int]
    classification: LoadClassification
    #: Aggregate model predictions, summed over selected p-threads.
    predicted: Dict[str, float] = field(default_factory=dict)

    @property
    def n_pthreads(self) -> int:
        return len(self.pthreads)

    @property
    def average_length(self) -> float:
        if not self.pthreads:
            return 0.0
        return sum(p.size for p in self.pthreads) / len(self.pthreads)

    def describe(self) -> str:
        lines = [
            f"PTHSEL+E target={self.target.label}: {len(self.pthreads)} "
            f"p-threads over {len(self.problem_pcs)} problem loads "
            f"(avg length {self.average_length:.1f})"
        ]
        lines.extend(p.describe() for p in self.pthreads)
        return "\n".join(lines)


def select_pthreads(
    trace: Trace,
    baseline: BaselineEstimates,
    target: Target = Target.LATENCY,
    machine: Optional[MachineConfig] = None,
    energy: Optional[EnergyConfig] = None,
    selection: Optional[SelectionConfig] = None,
    classification: Optional[LoadClassification] = None,
) -> SelectionResult:
    """Select p-threads for ``trace`` under the given target."""
    machine = machine or MachineConfig()
    energy = energy or EnergyConfig()
    selection = selection or SelectionConfig()
    # Sweep-cell sharing is only sound when the classification is the
    # canonical one for (trace, machine); a caller-supplied profile may
    # have been built differently, so it opts the call out of the memos.
    memo = analysis_memo_enabled() and classification is None
    if classification is None:
        classification = classify_trace_cached(trace, machine)

    problem_pcs = identify_problem_loads(classification, selection)
    obs.counters.counter("pthsel.framework.problem_loads").add(
        len(problem_pcs)
    )
    result = SelectionResult(
        target=target,
        pthreads=[],
        problem_pcs=problem_pcs,
        classification=classification,
    )
    if not problem_pcs:
        return result

    # Cost functions: flat for original PTHSEL, criticality-based for
    # every PTHSEL+E target (Section 4.1).
    if target.uses_flat_load_cost:
        cost_functions = {pc: FlatLoadCost() for pc in problem_pcs}
    else:
        # Cost functions depend on the full machine (latencies drive the
        # dependence-graph passes) but not on the target: the targets of
        # one sweep cell share them.  Values are frozen dataclasses.
        cost_key = ("loadcost", machine.fingerprint, tuple(problem_pcs))
        cost_functions = trace.derived.get(cost_key) if memo else None
        if cost_functions is None:
            cost_functions = build_cost_functions(
                trace, classification, problem_pcs, machine
            )
            if memo:
                trace.derived[cost_key] = cost_functions

    latency_model = LatencyModel(
        LatencyParams.from_machine(machine, baseline.ipc),
        machine,
        classification,
        embedded_latency_factor=selection.embedded_latency_factor,
    )
    energy_constants = EnergyModel(energy, machine).pthsel_constants()
    pth_energy = PthselEnergyModel(
        EnergyParams.from_constants(energy_constants),
        float(machine.width),
        classification,
    )
    composite = CompositeParams(
        l0=baseline.l0, e0=baseline.e0, w=target.composition_weight
    )

    pc_occurrences = trace.pc_occurrence_counts()
    selected_all: List[StaticPThread] = []
    next_id = 0
    totals: Dict[str, float] = {
        "ladv_agg": 0.0,
        "eadv_agg": 0.0,
        "cadv_agg": 0.0,
    }
    # Slice trees depend on the trace and the classification geometry
    # only -- neither latencies nor the target -- so all cells of a
    # latency sweep share one tree per problem load.  TreeSelector
    # treats trees as read-only.
    tree_key = (
        "slicetrees",
        profile_geometry_key(machine),
        selection.slicing_window,
        selection.max_pthread_insts,
    )
    trees: Dict[int, object] = trace.derived.setdefault(tree_key, {}) if memo else {}
    for pc in problem_pcs:
        tree = trees.get(pc)
        if tree is None:
            tree = build_slice_tree(
                trace,
                classification,
                pc,
                window=selection.slicing_window,
                max_insts=selection.max_pthread_insts,
                pc_occurrences=pc_occurrences,
            )
            trees[pc] = tree
        selector = TreeSelector(
            tree,
            latency_model,
            pth_energy,
            composite,
            cost_functions[pc],
            trace.program,
            max_pthread_insts=selection.max_pthread_insts,
            overlap_discount=selection.overlap_discount,
            min_gain_cycles=selection.min_gain_cycles,
            target_label=target.label,
        )
        for candidate in selector.select():
            metrics = candidate.metrics
            ladv = metrics.get("ladv_agg_discounted", metrics["ladv_agg"])
            eadv = metrics.get("eadv_agg_discounted", metrics["eadv_agg"])
            cadv = metrics.get("cadv_agg_discounted", metrics["cadv_agg"])
            totals["ladv_agg"] += ladv
            totals["eadv_agg"] += eadv
            totals["cadv_agg"] += cadv
            selected_all.append(
                StaticPThread(
                    pthread_id=next_id,
                    trigger_pc=candidate.node.pc,
                    body=tuple(candidate.body),
                    target_pcs=(pc,),
                    predicted={
                        "ladv_agg": ladv,
                        "eadv_agg": eadv,
                        "cadv_agg": cadv,
                        "lred": metrics["lred"],
                        "gain": metrics["gain"],
                        "dc_trig": float(candidate.dc_trig),
                        "dc_ptcm": float(candidate.dc_ptcm),
                    },
                )
            )
            next_id += 1

    if selection.merge_triggers:
        selected_all = merge_pthreads(selected_all)
    result.pthreads = selected_all
    result.predicted = totals
    if obs.is_enabled("info"):
        obs.log_event(
            "selection_done",
            target=target.label,
            problem_loads=len(problem_pcs),
            n_pthreads=len(selected_all),
            ladv_agg=round(totals["ladv_agg"], 1),
            eadv_agg=round(totals["eadv_agg"], 4),
        )
    return result
