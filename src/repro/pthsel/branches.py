"""Branch pre-execution: p-threads that pre-compute branch outcomes.

The paper's Section 7 sketches this extension: the same slice machinery
targets "problem" *branches* (static branches the hybrid predictor keeps
getting wrong) instead of problem loads.  A branch p-thread's body is
the branch's backward slice plus the branch itself, re-cast as a compare
whose result is communicated to the fetch stage as an outcome hint; a
timely, correct hint turns a misprediction into a correct prediction.

Two model changes relative to load targeting, both from the paper:

- the per-event latency gain is the misprediction penalty (the branch's
  resolve wait plus the front-end refill), not the miss latency;
- energy is saved at the *total* per-cycle rate ``Etotal/c`` rather than
  ``Eidle/c``, because the processor would have been busy (fetching and
  executing wrong-path work) during the cycles a hint removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import EnergyConfig, MachineConfig, SelectionConfig
from repro.critpath.classify import LoadClassification, classify_trace_cached
from repro.energy.wattch import EnergyModel
from repro.frontend.trace import Trace
from repro.pthsel.composite import CompositeParams
from repro.pthsel.energy_model import EnergyParams, PthselEnergyModel
from repro.pthsel.framework import BaselineEstimates, SelectionResult
from repro.pthsel.latency_model import LatencyModel, LatencyParams
from repro.pthsel.pthread import StaticPThread
from repro.pthsel.selector import TreeSelector
from repro.pthsel.targets import Target
from repro.slicer.slicetree import build_slice_tree


class _BranchLatencyModel(LatencyModel):
    """Latency model variant for branch hints.

    A prefetch only has to beat the demand load's *issue*; a branch hint
    has to beat the branch's *fetch*, which runs roughly a full window
    ahead of commit.  The extra required lead is the ROB's drain time at
    the program's commit rate.
    """

    def __init__(self, *args, fetch_lead_cycles: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.fetch_lead_cycles = fetch_lead_cycles

    def lred(self, body, target_pc, avg_distance, trigger=None):
        base = super().lred(body, target_pc, avg_distance, trigger)
        return max(0.0, base - self.fetch_lead_cycles)


class BranchMispredictCost:
    """Latency-tolerance to execution-time mapping for branch hints.

    One cycle of tolerance converts one-for-one until the full
    misprediction penalty is recovered, then saturates.
    """

    def __init__(self, penalty_cycles: float) -> None:
        self.penalty_cycles = penalty_cycles

    def gain(self, tolerated_cycles: float) -> float:
        return max(0.0, min(tolerated_cycles, self.penalty_cycles))


def identify_problem_branches(
    classification: LoadClassification,
    config: SelectionConfig,
) -> List[int]:
    """Static PCs of branches with disproportionate mispredictions."""
    total = sum(v[1] for v in classification.branch_counts.values())
    if not total:
        return []
    ranked = sorted(
        classification.branch_counts.items(), key=lambda kv: -kv[1][1]
    )
    return [
        pc
        for pc, (count, wrong) in ranked
        if wrong / total >= config.min_miss_share and wrong > 0
    ][: config.max_problem_loads]


def _mispredict_penalty(
    body, machine: MachineConfig, latency_model: LatencyModel
) -> float:
    """Estimated cycles one avoided misprediction saves.

    The redirect costs the front-end refill plus however long the branch
    waits for its operands -- for value-dependent branches behind missing
    loads that wait is the dominant term (and exactly the case where
    branch pre-execution pays, as the paper anticipates).
    """
    operand_wait = 0.0
    for inst in body:
        if inst.op.is_load:
            operand_wait = max(
                operand_wait, latency_model.expected_load_latency(inst.pc)
            )
    return machine.frontend_depth + 2.0 + operand_wait


def select_branch_pthreads(
    trace: Trace,
    baseline: BaselineEstimates,
    target: Target = Target.LATENCY,
    machine: Optional[MachineConfig] = None,
    energy: Optional[EnergyConfig] = None,
    selection: Optional[SelectionConfig] = None,
    classification: Optional[LoadClassification] = None,
    id_base: int = 1000,
) -> SelectionResult:
    """Select branch-outcome p-threads under the given target."""
    machine = machine or MachineConfig()
    energy = energy or EnergyConfig()
    selection = selection or SelectionConfig()
    if classification is None:
        classification = classify_trace_cached(trace, machine)

    problem_pcs = identify_problem_branches(classification, selection)
    result = SelectionResult(
        target=target,
        pthreads=[],
        problem_pcs=problem_pcs,
        classification=classification,
    )
    if not problem_pcs:
        return result

    fetch_lead = machine.rob_entries / max(0.05, baseline.ipc) * 0.5
    latency_model = _BranchLatencyModel(
        LatencyParams.from_machine(machine, baseline.ipc),
        machine,
        classification,
        embedded_latency_factor=selection.embedded_latency_factor,
        fetch_lead_cycles=fetch_lead,
    )
    constants = EnergyModel(energy, machine).pthsel_constants()
    # Section 7: branch hints save energy at Etotal/c, the program's
    # average per-cycle energy, because the saved cycles were busy ones.
    e_total_per_cycle = baseline.e0 / max(1.0, baseline.l0)
    params = EnergyParams(
        e_fetch=constants["e_fetch"],
        e_xall=constants["e_xall"],
        e_xalu=constants["e_xalu"],
        e_xload=constants["e_xload"],
        e_l2=constants["e_l2"],
        e_idle=e_total_per_cycle,
    )
    pth_energy = PthselEnergyModel(params, float(machine.width),
                                   classification)
    composite = CompositeParams(
        l0=baseline.l0, e0=baseline.e0, w=target.composition_weight
    )

    pc_occurrences = trace.pc_occurrence_counts()
    next_id = id_base
    totals: Dict[str, float] = {"ladv_agg": 0.0, "eadv_agg": 0.0,
                                "cadv_agg": 0.0}
    for pc in problem_pcs:
        if len(trace.occurrences(pc)) < 2:
            continue
        tree = build_slice_tree(
            trace,
            classification,
            pc,
            window=selection.slicing_window,
            max_insts=selection.max_pthread_insts,
            pc_occurrences=pc_occurrences,
            event_seqs=classification.mispredicted,
        )
        # Cost: probe the penalty with the shallowest candidate's body
        # (operand wait depends only on the slice's loads, which every
        # candidate shares).
        sample = next(tree.candidates(), None)
        if sample is None:
            continue
        sample_body = [trace.program[p] for p in sample.body_pcs()]
        penalty = _mispredict_penalty(sample_body, machine, latency_model)
        selector = TreeSelector(
            tree,
            latency_model,
            pth_energy,
            composite,
            BranchMispredictCost(penalty),
            trace.program,
            max_pthread_insts=selection.max_pthread_insts,
            overlap_discount=selection.overlap_discount,
            min_gain_cycles=selection.min_gain_cycles,
        )
        for candidate in selector.select():
            metrics = candidate.metrics
            ladv = metrics.get("ladv_agg_discounted", metrics["ladv_agg"])
            eadv = metrics.get("eadv_agg_discounted", metrics["eadv_agg"])
            cadv = metrics.get("cadv_agg_discounted", metrics["cadv_agg"])
            totals["ladv_agg"] += ladv
            totals["eadv_agg"] += eadv
            totals["cadv_agg"] += cadv
            hint_offset = max(1, int(round(candidate.node.avg_root_gap)))
            result.pthreads.append(
                StaticPThread(
                    pthread_id=next_id,
                    trigger_pc=candidate.node.pc,
                    body=tuple(candidate.body),
                    target_pcs=(pc,),
                    predicted={
                        "ladv_agg": ladv,
                        "eadv_agg": eadv,
                        "cadv_agg": cadv,
                        "lred": metrics["lred"],
                        "gain": metrics["gain"],
                        "dc_trig": float(candidate.dc_trig),
                        "dc_ptcm": float(candidate.dc_ptcm),
                    },
                    hint_offset=hint_offset,
                )
            )
            next_id += 1
    result.predicted = totals
    return result
