"""Per-tree candidate evaluation and overlap-aware greedy selection.

PTHSEL examines each slice tree independently and selects the subset of
candidate p-threads that maximizes summed (composite) advantage.  Two
p-threads on the same root path overlap -- they cover overlapping sets of
dynamic misses -- so when one is already selected, the other's advantage
is discounted by the latency tolerance shared on the jointly covered
misses (equation L7); a candidate whose discounted advantage goes
non-positive is not selected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.critpath.loadcost import FlatLoadCost, LoadCostFunction
from repro.isa.instruction import StaticInst
from repro.pthsel.composite import CompositeParams, cadv_agg
from repro.pthsel.energy_model import PthselEnergyModel
from repro.pthsel.latency_model import LatencyModel
from repro.pthsel.pthread import optimize_body
from repro.slicer.slicetree import SliceNode, SliceTree

CostFn = Union[FlatLoadCost, LoadCostFunction]


@dataclass
class Candidate:
    """One evaluated p-thread candidate (a slice-tree node)."""

    node: SliceNode
    target_pc: int
    body: List[StaticInst]
    dc_trig: int
    dc_ptcm: int
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def gain(self) -> float:
        return self.metrics["gain"]

    @property
    def ladv_agg(self) -> float:
        return self.metrics["ladv_agg"]

    def on_same_path(self, other: "Candidate") -> bool:
        """Ancestor/descendant relationship in the slice tree."""
        a, b = self.node, other.node
        if a.depth == b.depth:
            return a is b
        shallow, deep = (a, b) if a.depth < b.depth else (b, a)
        walk: Optional[SliceNode] = deep
        while walk is not None and walk.depth >= shallow.depth:
            if walk is shallow:
                return True
            walk = walk.parent
        return False


class TreeSelector:
    """Selects p-threads from one slice tree."""

    def __init__(
        self,
        tree: SliceTree,
        latency_model: LatencyModel,
        energy_model: PthselEnergyModel,
        composite: CompositeParams,
        cost_function: CostFn,
        program,
        max_pthread_insts: int = 64,
        overlap_discount: bool = True,
        min_gain_cycles: float = 1.0,
        target_label: str = "?",
    ) -> None:
        self.tree = tree
        self.latency_model = latency_model
        self.energy_model = energy_model
        self.composite = composite
        self.cost_function = cost_function
        self.program = program
        self.max_pthread_insts = max_pthread_insts
        self.overlap_discount = overlap_discount
        self.min_gain_cycles = min_gain_cycles
        self.target_label = target_label

    # ------------------------------------------------------------------ #

    def evaluate(self, node: SliceNode) -> Optional[Candidate]:
        """Build and score a candidate; None when it cannot possibly help."""
        if node.dc_ptcm <= 0:
            return None
        body_raw = [self.program[pc] for pc in node.body_pcs()]
        body = optimize_body(body_raw)
        if not body or len(body) > self.max_pthread_insts:
            return None
        dc_trig = self.tree.dc_trig(node)
        if dc_trig <= 0:
            return None
        metrics = self.latency_model.ladv_agg(
            body,
            self.tree.root_pc,
            node.avg_distance,
            dc_trig,
            node.dc_ptcm,
            self.cost_function,
            trigger=self.program[node.pc],
        )
        if metrics["gain"] < self.min_gain_cycles:
            return None
        metrics.update(
            self.energy_model.eadv_agg(body, metrics["ladv_agg"], dc_trig)
        )
        metrics["cadv_agg"] = cadv_agg(
            self.composite, metrics["ladv_agg"], metrics["eadv_agg"]
        )
        return Candidate(
            node=node,
            target_pc=self.tree.root_pc,
            body=body,
            dc_trig=dc_trig,
            dc_ptcm=node.dc_ptcm,
            metrics=metrics,
        )

    def _discounted(self, candidate: Candidate,
                    selected: List[Candidate]) -> Tuple[float, float, float]:
        """(ladv, eadv, cadv) of ``candidate`` given already-selected
        p-threads, applying the overlap discount (L7)."""
        discount = 0.0
        for other in selected if self.overlap_discount else ():
            if candidate.on_same_path(other):
                shared_misses = min(candidate.dc_ptcm, other.dc_ptcm)
                shared_gain = min(candidate.gain, other.gain)
                discount += shared_gain * shared_misses
        ladv = candidate.ladv_agg - discount
        ered = ladv * self.energy_model.params.e_idle
        eadv = ered - candidate.metrics["eoh_agg"]
        return ladv, eadv, cadv_agg(self.composite, ladv, eadv)

    def select(self) -> List[Candidate]:
        """Greedy selection maximizing summed composite advantage."""
        examined = 0
        candidates = []
        for node in self.tree.candidates():
            examined += 1
            c = self.evaluate(node)
            if c is not None:
                candidates.append(c)
        selected: List[Candidate] = []
        remaining = [c for c in candidates if c.metrics["cadv_agg"] > 0]
        while remaining:
            best = None
            best_values = None
            for candidate in remaining:
                values = self._discounted(candidate, selected)
                if values[2] > 0 and (
                    best_values is None or values[2] > best_values[2]
                ):
                    best = candidate
                    best_values = values
            if best is None:
                break
            ladv, eadv, cadv = best_values
            best.metrics["ladv_agg_discounted"] = ladv
            best.metrics["eadv_agg_discounted"] = eadv
            best.metrics["cadv_agg_discounted"] = cadv
            selected.append(best)
            remaining.remove(best)
        prefix = f"pthsel.selector.{self.target_label}"
        obs.counters.counter(f"{prefix}.candidates_examined").add(examined)
        obs.counters.counter(f"{prefix}.candidates_viable").add(
            len(candidates)
        )
        obs.counters.counter(f"{prefix}.candidates_kept").add(len(selected))
        if obs.is_enabled("debug"):
            obs.log_event(
                "tree_selected",
                level="debug",
                target=self.target_label,
                root_pc=self.tree.root_pc,
                examined=examined,
                viable=len(candidates),
                kept=len(selected),
            )
        return selected
