"""Composite latency/energy objectives (Table 2, equations C1-C3).

CADVagg(p) = L0^W * E0^(1-W)
           - (L0 - LADVagg(p))^W * (E0 - EADVagg(p))^(1-W)        (C1)

W is the latency weight (C2): 1 latency, 0 energy, 0.5 ED, 0.67 ED^2.
L0 and E0 are the unoptimized program's absolute latency and energy (C2,
external per-application parameters); only their ratio actually matters
to the ranking, as the paper notes.  Composite advantages of p-thread
*sets* add through their LADVagg/EADVagg components (C3), which is how
the selector accumulates them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CompositeParams:
    """External application parameters for C1 (equation C2)."""

    l0: float  # unoptimized latency (cycles)
    e0: float  # unoptimized energy (joules)
    w: float   # latency weight

    def __post_init__(self) -> None:
        if self.l0 <= 0 or self.e0 <= 0:
            raise ConfigError("L0 and E0 must be positive")
        if not 0.0 <= self.w <= 1.0:
            raise ConfigError("W must lie in [0, 1]")


def cadv_agg(params: CompositeParams, ladv_agg: float,
             eadv_agg: float) -> float:
    """Aggregate composite advantage (C1).

    Advantages larger than the baseline quantities are clamped just below
    them (a p-thread cannot remove more than all the time or energy).
    """
    l0, e0, w = params.l0, params.e0, params.w
    new_l = max(l0 * 1e-9, l0 - ladv_agg)
    new_e = max(e0 * 1e-9, e0 - eadv_agg)
    if w == 1.0:
        return l0 - new_l
    if w == 0.0:
        return e0 - new_e
    return (l0**w) * (e0 ** (1.0 - w)) - (new_l**w) * (new_e ** (1.0 - w))
