"""Exception hierarchy for the repro package.

Robustness-path errors derive from :class:`StructuredError` and carry a
machine-readable ``context`` dict (mirrored as attributes) so telemetry
events, ``JobFailure`` rows, and chaos reports can record *why* something
failed without parsing message strings.
"""

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ProgramError(ReproError):
    """A program is malformed (bad operands, unresolved label, ...)."""


class ExecutionError(ReproError):
    """Functional execution failed (bad memory access, runaway loop, ...)."""


class ConfigError(ReproError):
    """A configuration value is out of its legal range."""


class SelectionError(ReproError):
    """P-thread selection was asked to do something impossible."""


class WorkloadError(ReproError):
    """An unknown workload or input set was requested."""


# --------------------------------------------------------------------- #
# Structured failure taxonomy (harness robustness paths).
# --------------------------------------------------------------------- #


class StructuredError(ReproError):
    """An error carrying structured context for telemetry and reports.

    ``context`` holds JSON-serializable diagnostics; every key is also
    set as an attribute, so call sites read ``exc.cycle`` while the
    failure row records ``exc.context`` wholesale.
    """

    def __init__(self, message: str, **context: Any) -> None:
        super().__init__(message)
        self.context: Dict[str, Any] = context
        for key, value in context.items():
            setattr(self, key, value)


class SimulationTimeoutError(StructuredError):
    """A simulation job exceeded its per-job wall-clock timeout.

    Context: ``benchmark``, ``target``, ``timeout_s``, ``attempt``.
    """


class WorkerCrashError(StructuredError):
    """A worker process died (or its pool broke) mid-job.

    Context: ``benchmark``, ``target``, ``attempt``, ``cause``.
    """


class CacheCorruptionError(StructuredError):
    """A persistent cache entry failed to read back or validate.

    Context: ``path``, ``reason``.  The cache treats this as a miss and
    evicts the entry; the error object exists to give the telemetry
    event and counters a typed payload.
    """


class JournalError(StructuredError):
    """A run journal could not be opened, appended, or parsed.

    Context: ``path``, ``reason``.
    """


class FaultInjectedError(StructuredError):
    """A deterministic injected fault fired (``repro.faults``).

    Context: ``site``, ``key``.  Always retryable: the retry draws a
    fresh Bernoulli sample, so recovery paths converge.
    """


class AdmissionRejectedError(StructuredError):
    """The experiment server shed this request (queue full or a circuit
    breaker open).  Maps to HTTP 429/503 with a ``Retry-After`` header;
    retryable by definition -- that is what the header promises.

    Context: ``reason``, ``retry_after_s``, ``queue_depth``.
    """


class JobCancelledError(StructuredError):
    """A queued server job was cancelled before it ran.

    Deterministically final: retrying a cancellation reproduces it.
    Context: ``job_id``.
    """


class EnergyAuditError(StructuredError):
    """Per-event accumulated energy diverged from the closed-form E1-E8
    totals beyond the audit tolerance.

    A deterministic accounting bug, never a transient: the simulator's
    event stream and its aggregate activity counters disagree.  Context:
    ``max_rel_error``, ``tolerance``, ``worst_category``,
    ``event_total_joules``, ``closed_form_joules``.
    """


class TraceExportError(StructuredError):
    """A microarchitectural trace artifact could not be written or failed
    format validation.

    Context: ``path`` and/or ``reason``.
    """


class PipelineDeadlockError(ExecutionError):
    """The timing simulator can make no further progress.

    Carries the diagnostic state of the stalled machine: ``cycle``,
    ``committed``/``total`` main instructions, ``rob_head`` (a dict
    describing the ROB head op, or ``None`` when the ROB is empty), and
    ``fetch_state`` (one dict per live p-thread fetch context).
    """

    def __init__(self, message: str, **context: Any) -> None:
        super().__init__(message)
        self.context: Dict[str, Any] = context
        for key, value in context.items():
            setattr(self, key, value)


#: Error classes whose failures are deterministic: retrying the same job
#: can only reproduce them, so the engine fails fast instead.
NON_RETRYABLE = (
    ProgramError,
    ExecutionError,
    ConfigError,
    SelectionError,
    WorkloadError,
    # Accounting/export divergence is a code bug, not a transient: a
    # retry replays the same deterministic simulation and fails again.
    EnergyAuditError,
    TraceExportError,
    # A cancellation is an explicit, final decision about that job.
    JobCancelledError,
)


def is_retryable(exc: BaseException) -> bool:
    """Whether the parallel engine should retry a job that raised ``exc``."""
    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
        return False
    return not isinstance(exc, NON_RETRYABLE)
