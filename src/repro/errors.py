"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ProgramError(ReproError):
    """A program is malformed (bad operands, unresolved label, ...)."""


class ExecutionError(ReproError):
    """Functional execution failed (bad memory access, runaway loop, ...)."""


class ConfigError(ReproError):
    """A configuration value is out of its legal range."""


class SelectionError(ReproError):
    """P-thread selection was asked to do something impossible."""


class WorkloadError(ReproError):
    """An unknown workload or input set was requested."""
