#!/usr/bin/env python
"""Compare a fresh ``repro bench --quick`` payload against the committed
baseline and fail on regression.

Two kinds of checks:

- **Determinism** (exact): per-benchmark ``cycles`` and ``committed``
  must match the baseline bit-for-bit.  These are machine-independent;
  any difference means the simulator's behavior changed, which a perf PR
  must never do silently.
- **Throughput** (tolerance band): per-benchmark ``cycles_per_sec`` may
  not drop, and the grid walls (``sequential_uncached_wall_s``,
  ``cold_wall_s``, and each engine's wall in
  ``figure_grid.backend_walls_s``) may not grow, by more than
  ``--tolerance`` (a fraction; default 0.5 to absorb CI-runner
  variance).  Machines faster or slower than the baseline host pass as
  long as they are uniformly so; only a lopsided slowdown -- the shape
  of a code regression -- trips the guard.

The payloads' ``sim_backend`` fields must also agree: walls measured
under different default cycle engines are not comparable, so a drifted
default is reported as a failure rather than silently band-checked.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/bench_baseline_quick.json \
        --current bench-quick.json [--tolerance 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple


def _simulator_by_benchmark(payload: Dict) -> Dict[str, Dict]:
    return {row["benchmark"]: row for row in payload.get("simulator", [])}


#: Backends whose wall may legitimately be absent from a run: ``numpy``
#: needs numpy installed, ``native`` needs the compiled kernel artifact
#: (a C toolchain, or a cached build).  A baseline wall for one of these
#: that the current environment cannot measure is *skipped with a
#: visible notice*, never a hard failure -- toolchain-less CI legs must
#: stay green.
OPTIONAL_BACKENDS = ("numpy", "native")


def compare_named(
    baseline: Dict, current: Dict, tolerance: float, notices=None
) -> List[Tuple[str, str]]:
    """Return ``(metric_name, message)`` failures (empty = pass).

    The metric name is machine-readable (``simulator[gcc].cycles``,
    ``figure_grid.cold_wall_s``) so the CI log -- and the analytics
    regression timeline, which generalizes this check -- can pinpoint
    exactly what moved, not just that something did.

    ``notices``, when given, is a list that collects non-fatal skip
    messages (e.g. a baseline ``native`` wall that this environment
    cannot reproduce because the compiled artifact is absent).
    """
    if notices is None:
        notices = []
    failures: List[Tuple[str, str]] = []
    base_sim = _simulator_by_benchmark(baseline)
    cur_sim = _simulator_by_benchmark(current)

    base_backend = baseline.get("sim_backend")
    cur_backend = current.get("sim_backend")
    if base_backend is not None and cur_backend != base_backend:
        failures.append((
            "sim_backend",
            f"sim_backend: baseline measured under {base_backend!r} but "
            f"current ran under {cur_backend!r}; walls are not comparable",
        ))

    for name, base_row in base_sim.items():
        cur_row = cur_sim.get(name)
        if cur_row is None:
            failures.append((
                f"simulator[{name}]",
                f"simulator[{name}]: missing from current run",
            ))
            continue
        for exact in ("cycles", "committed"):
            if cur_row.get(exact) != base_row.get(exact):
                failures.append((
                    f"simulator[{name}].{exact}",
                    f"simulator[{name}].{exact}: determinism break -- "
                    f"baseline {base_row.get(exact)} vs "
                    f"current {cur_row.get(exact)}",
                ))
        base_tp = float(base_row.get("cycles_per_sec", 0) or 0)
        cur_tp = float(cur_row.get("cycles_per_sec", 0) or 0)
        floor = base_tp * (1.0 - tolerance)
        if base_tp and cur_tp < floor:
            failures.append((
                f"simulator[{name}].cycles_per_sec",
                f"simulator[{name}].cycles_per_sec: {cur_tp:,.0f} < "
                f"floor {floor:,.0f} (baseline {base_tp:,.0f}, "
                f"tolerance {tolerance:.0%})",
            ))

    base_grid = baseline.get("figure_grid", {})
    cur_grid = current.get("figure_grid", {})
    for metric in ("sequential_uncached_wall_s", "cold_wall_s"):
        base_wall = base_grid.get(metric)
        cur_wall = cur_grid.get(metric)
        if base_wall is None or cur_wall is None:
            continue
        if float(base_wall) < 1.0:
            # Sub-second walls are noise-dominated; the band would be
            # narrower than scheduler jitter.
            continue
        ceiling = float(base_wall) * (1.0 + tolerance)
        if float(cur_wall) > ceiling:
            failures.append((
                f"figure_grid.{metric}",
                f"figure_grid.{metric}: {cur_wall}s > ceiling "
                f"{ceiling:.2f}s (baseline {base_wall}s, "
                f"tolerance {tolerance:.0%})",
            ))
    base_walls = base_grid.get("backend_walls_s", {}) or {}
    cur_walls = cur_grid.get("backend_walls_s", {}) or {}
    for name, base_wall in base_walls.items():
        cur_wall = cur_walls.get(name)
        if cur_wall is None:
            if name in OPTIONAL_BACKENDS:
                notices.append(
                    f"figure_grid.backend_walls_s.{name}: baseline has a "
                    f"wall but the {name} backend is unavailable in this "
                    "environment -- band check SKIPPED"
                )
                continue
            failures.append((
                f"figure_grid.backend_walls_s.{name}",
                f"figure_grid.backend_walls_s.{name}: missing from "
                "current run",
            ))
            continue
        if float(base_wall) < 1.0:
            continue
        ceiling = float(base_wall) * (1.0 + tolerance)
        if float(cur_wall) > ceiling:
            failures.append((
                f"figure_grid.backend_walls_s.{name}",
                f"figure_grid.backend_walls_s.{name}: {cur_wall}s > "
                f"ceiling {ceiling:.2f}s (baseline {base_wall}s, "
                f"tolerance {tolerance:.0%})",
            ))
    if base_grid.get("rows") != cur_grid.get("rows"):
        failures.append((
            "figure_grid.rows",
            f"figure_grid.rows: baseline {base_grid.get('rows')} vs "
            f"current {cur_grid.get('rows')}",
        ))
    return failures


def compare(baseline: Dict, current: Dict, tolerance: float) -> List[str]:
    """Back-compat wrapper: human-readable messages only."""
    return [msg for _, msg in compare_named(baseline, current, tolerance)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional slowdown before failing (default 0.5)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    notices: List[str] = []
    failures = compare_named(baseline, current, args.tolerance, notices)
    base_sim = _simulator_by_benchmark(baseline)
    cur_sim = _simulator_by_benchmark(current)
    print(f"bench regression check (tolerance {args.tolerance:.0%})")
    for name in sorted(set(base_sim) | set(cur_sim)):
        b = base_sim.get(name, {})
        c = cur_sim.get(name, {})
        print(
            f"  {name:>10}: cycles/s {b.get('cycles_per_sec', '?'):>12} -> "
            f"{c.get('cycles_per_sec', '?'):>12}"
        )
    for metric in ("sequential_uncached_wall_s", "cold_wall_s",
                   "warm_wall_s"):
        b = baseline.get("figure_grid", {}).get(metric)
        c = current.get("figure_grid", {}).get(metric)
        if b is not None or c is not None:
            print(f"  {metric}: {b}s -> {c}s")
    base_walls = baseline.get("figure_grid", {}).get("backend_walls_s", {})
    cur_walls = current.get("figure_grid", {}).get("backend_walls_s", {})
    for name in sorted(set(base_walls) | set(cur_walls)):
        print(
            f"  backend_walls_s[{name}]: {base_walls.get(name)}s -> "
            f"{cur_walls.get(name)}s"
        )
    print(
        f"  sim_backend: {baseline.get('sim_backend')} -> "
        f"{current.get('sim_backend')}"
    )
    if notices:
        print("\nNOTICES (skipped, not failures):")
        for message in notices:
            print(f"  - {message}")

    if failures:
        print("\nREGRESSIONS:")
        for _, message in failures:
            print(f"  - {message}")
        # Name the first regressing metric on its own greppable line so
        # the CI log (and anything parsing it) pinpoints what moved.
        print(f"\nfirst regressing metric: {failures[0][0]}")
        print(f"FIRST_REGRESSING_METRIC={failures[0][0]}")
        return 1
    print("\nOK: no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
