"""Shared fixtures for the figure/table regeneration benchmarks.

Every module regenerates one of the paper's tables or figures.  The
timing measured by pytest-benchmark is the wall-clock of the full
regeneration (profiling + selection + simulation); each regeneration
also writes its data table to ``benchmarks/results/<name>.txt`` so the
numbers are inspectable after a captured pytest run.
"""

import os
from pathlib import Path

import pytest

# Benchmarks time the real regeneration work; a warm persistent cache
# would skip it and report meaningless wall-clocks.
os.environ.setdefault("REPRO_CACHE", "0")

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_once(benchmark):
    """Run a regeneration exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run


def write_report(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] written to {path}\n{text}")
