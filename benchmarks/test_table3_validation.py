"""Table 3: PTHSEL+E model validation.

Compares predicted latency/energy/ED reductions (the LADVagg/EADVagg/
PADVagg totals of the selected p-thread sets) against the reductions the
timing+energy simulation actually measures.  Ratios near 1 mean accurate
prediction; below 1 over-estimation.  The paper reports 0.64-0.93 for
latency (the criticality model limits over-estimation to ~36%) and notes
energy errors within ~33% relative in either direction.
"""

import math

from conftest import write_report

from repro.harness.figures import TABLE3_BENCHMARKS, table3
from repro.harness.report import format_table


def test_table3_model_validation(run_once, results_dir):
    rows = run_once(table3)
    lines = ["== Table 3: actual / predicted ratios (L-p-threads) =="]
    lines.append(format_table(rows))
    lines.append("")
    lines.append("paper latency ratios: gcc 0.93, parser 0.64, "
                 "vortex 0.72, vpr.place 0.92")
    write_report(results_dir, "table3_validation", "\n".join(lines))

    assert len(rows) == len(TABLE3_BENCHMARKS)
    for row in rows:
        ratio = row["latency_ratio"]
        assert math.isfinite(ratio)
        # Relative (not absolute) accuracy is what PTHSEL needs: the
        # prediction must be correlated with reality -- same sign and
        # within a small constant factor.
        assert 0.1 < ratio < 3.0, row
