"""Figure 5 (bottom): sensitivity to L2 cache size and latency.

Sweeps the L2 through 128KB(10cy), 256KB(12cy, default) and 512KB(15cy).
The paper: smaller L2s generally mean more misses and more latency (and
energy) for pre-execution to recover -- but not monotonically for every
benchmark (in the paper's mcf the extra p-thread traffic overwhelms the
gain; our mcf is bandwidth-bound and stays flat).  Larger L2s also cost
more energy per access (CACTI scaling).
"""

from conftest import write_report

from repro.harness.figures import FIG5_L2_BENCHMARKS, figure5_l2_size
from repro.harness.report import format_table


def test_figure5_l2_size(run_once, results_dir):
    rows = run_once(figure5_l2_size)
    lines = ["== Figure 5 bottom: L2 128KB(10) / 256KB(12) / 512KB(15) =="]
    lines.append(format_table(
        rows,
        columns=["l2_kb", "l2_latency", "benchmark", "target",
                 "n_pthreads", "speedup_pct", "energy_save_pct",
                 "ed_save_pct"],
    ))
    write_report(results_dir, "fig5_l2_size", "\n".join(lines))

    # twolf/vortex: the dominant effect of a smaller L2 is more latency
    # tolerated overall -> speedups at 128KB at least match 512KB.
    def speedup(bench, kb):
        return next(
            r["speedup_pct"] for r in rows
            if r["benchmark"] == bench and r["l2_kb"] == kb
            and r["target"] == "L"
        )

    for bench in ("twolf", "vortex"):
        assert speedup(bench, 128) >= speedup(bench, 512) - 3.0

    # Selection responds to the configuration: at least one benchmark
    # changes its p-thread count across L2 sizes.
    counts = {
        (r["benchmark"], r["l2_kb"]): r["n_pthreads"]
        for r in rows if r["target"] == "L"
    }
    assert len(set(counts.values())) > 1
