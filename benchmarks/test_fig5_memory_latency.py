"""Figure 5 (middle): sensitivity to memory latency.

Sweeps memory latency through 100, 200 (default) and 300 cycles.  The
paper: pre-execution's performance gains grow with memory latency (more
latency to tolerate per load) but more slowly than the latency itself,
and longer latencies are *relatively* more energy-efficient because they
require induction unrolling -- a fixed, energy-cheap idiom -- rather than
longer bodies.
"""

from conftest import write_report

from repro.harness.figures import (
    FIG5_MEMLAT_BENCHMARKS,
    figure5_memory_latency,
)
from repro.harness.report import format_table


def test_figure5_memory_latency(run_once, results_dir):
    rows = run_once(figure5_memory_latency)
    lines = ["== Figure 5 middle: memory latency 100 / 200 / 300 =="]
    lines.append(format_table(
        rows,
        columns=["memory_latency", "benchmark", "target", "n_pthreads",
                 "avg_pthread_length", "speedup_pct", "energy_save_pct",
                 "ed_save_pct"],
    ))
    write_report(results_dir, "fig5_memory_latency", "\n".join(lines))

    def mean_speedup(latency):
        matching = [
            r for r in rows
            if r["memory_latency"] == latency and r["target"] == "L"
        ]
        return sum(r["speedup_pct"] for r in matching) / len(matching)

    # Gains grow with memory latency...
    assert mean_speedup(100) <= mean_speedup(200) + 2.0
    assert mean_speedup(200) <= mean_speedup(300) + 2.0
    # ...but sub-linearly: tripling the latency must not triple the gain.
    if mean_speedup(100) > 1.0:
        assert mean_speedup(300) < 3.0 * mean_speedup(100)

    # P-thread length must not blow up with latency (induction unrolling
    # is a fixed-cost idiom thanks to the i+=k merge).
    def mean_length(latency):
        matching = [
            r for r in rows
            if r["memory_latency"] == latency and r["target"] == "L"
            and r["n_pthreads"] > 0
        ]
        return sum(r["avg_pthread_length"] for r in matching) / max(
            1, len(matching)
        )

    assert mean_length(300) < mean_length(100) + 8.0
