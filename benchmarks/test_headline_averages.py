"""Headline averages (Abstract / Sections 3.2 and 5.1).

The paper's summary numbers:

- O (energy-blind PTHSEL):  +13.8% performance at 11.9% more energy
  (quasi-linear trade-off);
- L (criticality cost model): +16.4% performance at 8.7% more energy
  (super-linear trade-off, ~6.6% ED gain);
- E: +5.4% performance with a small energy *decrease* (~0.7%);
- P (ED): +12.9% performance, best ED gain (~8.8%).

The reproduction asserts the *relationships* between targets, not the
absolute numbers (the substrate is a synthetic-workload simulator).
"""

from conftest import write_report

from repro.harness.figures import figure3
from repro.harness.report import format_table
from repro.pthsel.targets import Target


def test_headline_averages(run_once, results_dir):
    data = run_once(
        figure3,
        targets=(Target.ORIGINAL, Target.LATENCY, Target.ENERGY, Target.ED),
    )
    speed = data.gmeans("speedup_pct")
    energy = data.gmeans("energy_save_pct")
    ed = data.gmeans("ed_save_pct")
    ed2 = data.gmeans("ed2_save_pct")

    rows = [
        {"target": t, "speedup_pct": speed[t],
         "energy_save_pct": energy[t], "ed_save_pct": ed[t],
         "ed2_save_pct": ed2[t]}
        for t in ("O", "L", "E", "P")
    ]
    paper = [
        {"target": "O(paper)", "speedup_pct": 13.8,
         "energy_save_pct": -11.9, "ed_save_pct": 3.5, "ed2_save_pct": 15.0},
        {"target": "L(paper)", "speedup_pct": 16.4,
         "energy_save_pct": -8.7, "ed_save_pct": 6.6, "ed2_save_pct": 19.0},
        {"target": "E(paper)", "speedup_pct": 5.4,
         "energy_save_pct": 0.7, "ed_save_pct": 5.8, "ed2_save_pct": float("nan")},
        {"target": "P(paper)", "speedup_pct": 12.9,
         "energy_save_pct": -3.0, "ed_save_pct": 8.8, "ed2_save_pct": float("nan")},
    ]
    text = (
        "== Headline GMean averages (this reproduction) ==\n"
        + format_table(rows)
        + "\n\n== Paper values ==\n"
        + format_table(paper)
    )
    write_report(results_dir, "headline_averages", text)

    # Latency ordering: L >= P >= E, and L >= O.
    assert speed["L"] >= speed["E"]
    assert speed["L"] >= speed["P"] - 1.0
    assert speed["P"] >= speed["E"] - 1.0
    assert speed["L"] >= speed["O"] - 1.0
    # Energy ordering: E >= P >= O and E >= L >= O.
    assert energy["E"] >= energy["P"] - 0.5
    assert energy["E"] >= energy["L"] - 0.5
    assert energy["L"] >= energy["O"]
    # E-p-threads are roughly energy-free (paper: +0.7%).
    assert energy["E"] > -2.0
    # Pre-execution is worthwhile: L improves ED and ED^2 on average.
    assert ed["L"] > 0
    assert ed2["L"] > 0
