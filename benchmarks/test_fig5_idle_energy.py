"""Figure 5 (top): sensitivity to the idle energy factor.

Sweeps the idle factor through 0%, 5% (default) and 10%.  The paper's
observations this reproduces:

- at 0% there are *no* E-p-threads (every EADVagg is negative without an
  idle-energy lever), and latency p-threads are strongly sub-linear in
  energy;
- at 10%, latency reduction converts to energy reduction more
  effectively: E/P p-threads can actively *reduce* energy.
"""

from conftest import write_report

from repro.harness.figures import FIG5_IDLE_BENCHMARKS, figure5_idle
from repro.harness.report import format_table


def test_figure5_idle_energy_factor(run_once, results_dir):
    rows = run_once(figure5_idle)
    lines = ["== Figure 5 top: idle energy factor 0% / 5% / 10% =="]
    lines.append(format_table(
        rows,
        columns=["idle_factor", "benchmark", "target", "n_pthreads",
                 "speedup_pct", "energy_save_pct", "ed_save_pct"],
    ))
    write_report(results_dir, "fig5_idle_energy", "\n".join(lines))

    def rows_for(factor, target):
        return [
            r for r in rows
            if r["idle_factor"] == factor and r["target"] == target
        ]

    # 0% idle factor: E-p-thread selection must be empty everywhere.
    for row in rows_for(0.0, "E"):
        assert row["n_pthreads"] == 0, row

    # Energy characteristics of L-p-threads improve monotonically with
    # the idle factor on average.
    def mean_energy(factor):
        matching = rows_for(factor, "L")
        return sum(r["energy_save_pct"] for r in matching) / len(matching)

    assert mean_energy(0.0) <= mean_energy(0.05) <= mean_energy(0.10)
