"""Branch pre-execution (Section 7 extension).

The paper's future-work sketch, implemented: p-threads that pre-compute
branch outcomes, with energy savings modeled at Etotal/c.  Evaluated on
bzip2, whose data-dependent branch sits behind the problem gather --
exactly the value-dependent-branch-behind-a-miss case where an outcome
hint removes both the redirect and the resolve wait.
"""

from conftest import write_report

from repro.harness.experiment import run_experiment
from repro.harness.report import format_table
from repro.pthsel.targets import Target


def test_branch_preexecution_on_bzip2(run_once, results_dir):
    def run():
        load_only = run_experiment("bzip2", target=Target.LATENCY)
        combined = run_experiment("bzip2", target=Target.LATENCY,
                                  include_branch_pthreads=True)
        return load_only, combined

    load_only, combined = run_once(run)
    rows = [
        {"selection": "load p-threads only",
         "speedup_pct": load_only.speedup_pct,
         "energy_save_pct": load_only.energy_save_pct,
         "mispredictions": load_only.optimized.stats.mispredictions,
         "hints_used": load_only.optimized.stats.branch_hints_used},
        {"selection": "+ branch p-threads",
         "speedup_pct": combined.speedup_pct,
         "energy_save_pct": combined.energy_save_pct,
         "mispredictions": combined.optimized.stats.mispredictions,
         "hints_used": combined.optimized.stats.branch_hints_used},
    ]
    write_report(results_dir, "branch_preexecution", format_table(rows))

    assert combined.optimized.stats.branch_hints_used > 100
    # Timely correct hints remove mispredictions...
    assert (
        combined.optimized.stats.mispredictions
        < load_only.optimized.stats.mispredictions
    )
    # ...and the combination does not lose performance on this workload.
    assert combined.speedup_pct > load_only.speedup_pct - 1.0
