"""Figure 3: retargeting p-thread selection with PTHSEL+E.

Regenerates all four panels for the O/L/E/P targets: metric improvements,
pre-execution diagnostics (coverage, p-instruction increase, usefulness,
average p-thread length), and the latency/energy breakdown stacks.

Paper headline shapes this reproduces:
- L-p-threads: best performance (paper +16.4%) at moderate energy cost;
- E-p-threads: lowest coverage/overhead, energy-neutral or saving;
- P (ED)-p-threads: between the two, best or near-best ED;
- O-p-threads: similar latency to L but consistently worse energy.
"""

from conftest import write_report

from repro.cpu.stats import BREAKDOWN_CATEGORIES
from repro.energy.breakdown import CATEGORIES as ENERGY_CATEGORIES
from repro.harness.figures import figure3
from repro.harness.report import format_table


def test_figure3_retargeting(run_once, results_dir):
    data = run_once(figure3)

    lines = ["== Figure 3: O/L/E/P targets across the suite =="]
    lines.append(format_table(data.rows))
    lines.append("")
    for metric in ("speedup_pct", "energy_save_pct", "ed_save_pct"):
        lines.append(f"GMean {metric}: " + "  ".join(
            f"{t}={v:+.1f}%" for t, v in data.gmeans(metric).items()
        ))
    lines.append("")
    lines.append("== Latency stacks ==")
    lines.append(format_table(
        data.latency_stacks,
        columns=["benchmark", "run", *BREAKDOWN_CATEGORIES],
        float_digits=1,
    ))
    lines.append("")
    lines.append("== Energy stacks ==")
    lines.append(format_table(
        data.energy_stacks,
        columns=["benchmark", "run", *ENERGY_CATEGORIES],
        float_digits=1,
    ))
    write_report(results_dir, "fig3_retargeting", "\n".join(lines))

    speed = data.gmeans("speedup_pct")
    energy = data.gmeans("energy_save_pct")

    # Metric robustness (the paper's Section 5.1 summary): the latency
    # target wins latency; the energy target wins energy.
    assert speed["L"] >= speed["E"]
    assert energy["E"] >= energy["L"]
    assert energy["E"] >= energy["O"]
    # Energy-blind selection is the most energy-hungry.
    assert energy["O"] <= energy["L"]
    # E-p-threads are roughly energy-neutral or better (paper: +0.7%).
    assert energy["E"] > -2.0
