#!/usr/bin/env python
"""Measure simulator throughput + figure-grid wall time; write BENCH json.

Standalone script (not a pytest module): run it from anywhere and it
writes ``BENCH_<yyyymmdd>.json`` at the repository root by default, so
successive runs record the perf trajectory next to the code that moved
it.  ``repro bench`` is the installed equivalent.

Usage::

    python benchmarks/bench_throughput.py [--quick] [--jobs N]
        [--out-file PATH] [--no-grid]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.bench import run_bench, write_bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small benchmark subset + reduced grid")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the grid timing")
    parser.add_argument("--no-grid", action="store_true",
                        help="skip the figure-grid wall-time measurement")
    parser.add_argument("--out-file", default=None,
                        help="output path (default BENCH_<date>.json at "
                        "the repo root)")
    args = parser.parse_args(argv)

    payload = run_bench(
        quick=args.quick, jobs=args.jobs, with_grid=not args.no_grid
    )
    out = args.out_file
    if out is None:
        out = os.path.join(REPO_ROOT, f"BENCH_{payload['date'].replace('-', '')}.json")
    path = write_bench(payload, out)
    print(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
