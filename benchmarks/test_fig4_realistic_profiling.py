"""Figure 4: robustness to profiling data.

P-threads are selected from profiles of a *different* input set ("ref")
and evaluated on the primary ("train") runs.  The paper finds performance
/energy/ED gains within ~20% relative of ideal profiling for most
benchmarks, with bzip2's L-p-threads as the notable casualty (its ref
input is less memory-critical than train).
"""

from conftest import write_report

from repro.harness.figures import figure3, figure4
from repro.harness.report import format_table
from repro.pthsel.targets import Target

TARGETS = (Target.LATENCY, Target.ENERGY, Target.ED)


def test_figure4_realistic_profiling(run_once, results_dir):
    realistic = run_once(figure4)
    ideal = figure3(targets=TARGETS)

    ideal_by_key = {
        (r["benchmark"], r["target"]): r for r in ideal.rows
    }
    rows = []
    for row in realistic.rows:
        key = (row["benchmark"], row["target"])
        rows.append(
            {
                "benchmark": row["benchmark"],
                "target": row["target"],
                "ideal_speedup": ideal_by_key[key]["speedup_pct"],
                "realistic_speedup": row["speedup_pct"],
                "ideal_energy": ideal_by_key[key]["energy_save_pct"],
                "realistic_energy": row["energy_save_pct"],
            }
        )
    lines = ["== Figure 4: ideal vs realistic profiling =="]
    lines.append(format_table(rows))
    gm_ideal = ideal.gmeans("speedup_pct")
    gm_real = realistic.gmeans("speedup_pct")
    lines.append("")
    lines.append(
        "GMean speedup L: ideal "
        f"{gm_ideal['L']:+.1f}% vs realistic {gm_real['L']:+.1f}%"
    )
    write_report(results_dir, "fig4_realistic_profiling", "\n".join(lines))

    # Realistic profiling must still deliver most of the ideal gain.
    assert gm_real["L"] > 0.4 * gm_ideal["L"]
    # And never beat ideal profiling by much (sanity).
    assert gm_real["L"] < gm_ideal["L"] + 8.0
