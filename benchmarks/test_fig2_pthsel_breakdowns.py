"""Figure 2: latency and energy breakdowns of energy-blind pre-execution.

Regenerates both panels: per-benchmark critical-path (latency) and energy
stacks for unoptimized execution (N) and original-PTHSEL p-threads (O),
normalized to N = 100%.  The paper's headline for this figure: O-p-threads
improve performance by ~13.8% while increasing energy by ~11.9% -- a
quasi-linear latency/energy trade-off.
"""

from conftest import write_report

from repro.cpu.stats import BREAKDOWN_CATEGORIES
from repro.energy.breakdown import CATEGORIES as ENERGY_CATEGORIES
from repro.harness.figures import figure2
from repro.harness.report import format_table, geometric_mean_pct


def test_figure2_breakdowns(run_once, results_dir):
    data = run_once(figure2)

    lines = ["== Figure 2: improvements with O-p-threads =="]
    lines.append(format_table(data.rows))
    lines.append("")
    lines.append("== Latency breakdown stacks (baseline = 100) ==")
    lines.append(
        format_table(data.latency_stacks,
                     columns=["benchmark", "run", *BREAKDOWN_CATEGORIES],
                     float_digits=1)
    )
    lines.append("")
    lines.append("== Energy breakdown stacks (baseline = 100) ==")
    lines.append(
        format_table(data.energy_stacks,
                     columns=["benchmark", "run", *ENERGY_CATEGORIES],
                     float_digits=1)
    )
    speedups = data.gmeans("speedup_pct")["O"]
    energy = data.gmeans("energy_save_pct")["O"]
    lines.append("")
    lines.append(
        f"GMean: speedup {speedups:+.1f}% energy {energy:+.1f}% "
        f"(paper: +13.8% / -11.9%)"
    )
    write_report(results_dir, "fig2_pthsel_breakdowns", "\n".join(lines))

    # Shape assertions: pre-execution helps latency, costs energy.
    assert speedups > 5.0
    assert energy < 2.0
    # Every baseline latency stack sums to ~100.
    for stack in data.latency_stacks:
        if stack["run"] == "N":
            total = sum(stack[c] for c in BREAKDOWN_CATEGORIES)
            assert abs(total - 100.0) < 1.0
