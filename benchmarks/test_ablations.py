"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one piece of the selection machinery and measures
the effect on a representative benchmark, demonstrating that the piece
earns its place:

- flat vs criticality load cost (the paper's O-vs-L distinction, run on
  twolf where overlapping misses make the flat model over-select);
- overlap discounting (equation L7) on vs off;
- trigger merging post-pass on vs off;
- interaction-cost averaging: the criticality samples sit between the
  pessimistic-only and optimistic-only estimates.
"""

from conftest import write_report

from repro.config import SelectionConfig
from repro.critpath.classify import classify_trace
from repro.critpath.loadcost import build_cost_functions
from repro.frontend import interpret
from repro.harness.experiment import run_experiment
from repro.harness.report import format_table
from repro.pthsel.targets import Target
from repro.slicer import identify_problem_loads
from repro.workloads import get_program


def test_ablation_load_cost_model(run_once, results_dir):
    def run():
        flat = run_experiment("twolf", target=Target.ORIGINAL)
        crit = run_experiment("twolf", target=Target.LATENCY)
        return flat, crit

    flat, crit = run_once(run)
    rows = [
        {"model": "flat (O)", "speedup_pct": flat.speedup_pct,
         "energy_save_pct": flat.energy_save_pct,
         "pinst_increase_pct": flat.diagnostics()["pinst_increase_pct"]},
        {"model": "criticality (L)", "speedup_pct": crit.speedup_pct,
         "energy_save_pct": crit.energy_save_pct,
         "pinst_increase_pct": crit.diagnostics()["pinst_increase_pct"]},
    ]
    write_report(results_dir, "ablation_load_cost",
                 format_table(rows))
    # The criticality model achieves at least the flat model's speedup
    # with no more p-instruction volume.
    assert crit.speedup_pct >= flat.speedup_pct - 1.5
    assert (
        crit.diagnostics()["pinst_increase_pct"]
        <= flat.diagnostics()["pinst_increase_pct"] + 1e-6
    )


def test_ablation_overlap_discount(run_once, results_dir):
    def run():
        on = run_experiment("bzip2", target=Target.LATENCY,
                            selection=SelectionConfig(overlap_discount=True))
        off = run_experiment("bzip2", target=Target.LATENCY,
                             selection=SelectionConfig(overlap_discount=False))
        return on, off

    on, off = run_once(run)
    rows = [
        {"discount": "on", "n_pthreads": on.selection.n_pthreads,
         "speedup_pct": on.speedup_pct,
         "energy_save_pct": on.energy_save_pct},
        {"discount": "off", "n_pthreads": off.selection.n_pthreads,
         "speedup_pct": off.speedup_pct,
         "energy_save_pct": off.energy_save_pct},
    ]
    write_report(results_dir, "ablation_overlap_discount",
                 format_table(rows))
    # Without discounting, overlapping p-threads pile up.
    assert off.selection.n_pthreads >= on.selection.n_pthreads
    assert off.energy_save_pct <= on.energy_save_pct + 1.0


def test_ablation_trigger_merging(run_once, results_dir):
    def run():
        merged = run_experiment("mcf", target=Target.ORIGINAL,
                                selection=SelectionConfig(merge_triggers=True))
        split = run_experiment("mcf", target=Target.ORIGINAL,
                               selection=SelectionConfig(merge_triggers=False))
        return merged, split

    merged, split = run_once(run)
    rows = [
        {"merging": "on", "n_pthreads": merged.selection.n_pthreads,
         "pinst_increase_pct": merged.diagnostics()["pinst_increase_pct"],
         "energy_save_pct": merged.energy_save_pct},
        {"merging": "off", "n_pthreads": split.selection.n_pthreads,
         "pinst_increase_pct": split.diagnostics()["pinst_increase_pct"],
         "energy_save_pct": split.energy_save_pct},
    ]
    write_report(results_dir, "ablation_trigger_merging",
                 format_table(rows))
    # Merging shares the common prefix: never more p-threads, never more
    # executed p-instruction volume.
    assert merged.selection.n_pthreads <= split.selection.n_pthreads
    assert (
        merged.diagnostics()["pinst_increase_pct"]
        <= split.diagnostics()["pinst_increase_pct"] + 1.0
    )


def test_ablation_interaction_averaging(run_once, results_dir):
    """twolf's two contemporaneous gathers: the averaged estimate must
    sit between pessimistic-only and the flat (fully optimistic
    cycle-for-cycle) assumption."""

    def run():
        trace = interpret(get_program("twolf"), max_instructions=2_000_000)
        cls = classify_trace(trace)
        pcs = identify_problem_loads(cls)
        return build_cost_functions(trace, cls, pcs)

    functions = run_once(run)
    rows = []
    for pc, fn in functions.items():
        rows.append({
            "pc": pc,
            "saturation_cycles": fn.saturation,
            "criticality": fn.criticality,
            "miss_latency": fn.miss_latency,
        })
    write_report(results_dir, "ablation_interaction_averaging",
                 format_table(rows))
    for fn in functions.values():
        # Strictly below the flat assumption (some interaction exists)...
        assert fn.saturation < fn.miss_latency
        # ...but well above zero (not the pessimistic collapse).
        assert fn.saturation > 0.05 * fn.miss_latency
