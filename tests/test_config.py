"""Validation tests for the configuration dataclasses."""

import pytest

from repro.config import (
    CacheConfig,
    EnergyConfig,
    MachineConfig,
    SelectionConfig,
    SimulationConfig,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_paper_geometries_valid(self):
        CacheConfig(32 * 1024, 2, 64, 1)
        CacheConfig(16 * 1024, 2, 64, 2)
        CacheConfig(256 * 1024, 4, 64, 12)

    def test_n_sets(self):
        assert CacheConfig(256 * 1024, 4, 64, 12).n_sets == 1024

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=0, assoc=2, line_bytes=64, hit_latency=1),
            dict(size_bytes=1000, assoc=2, line_bytes=64, hit_latency=1),
            dict(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=0),
            dict(size_bytes=64 * 3 * 2, assoc=2, line_bytes=64, hit_latency=1),
        ],
    )
    def test_bad_geometries_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig(**kwargs)


class TestMachineConfig:
    def test_paper_defaults(self):
        m = MachineConfig()
        assert m.width == 6
        assert m.rob_entries == 128
        assert m.rs_entries == 80
        assert m.physical_registers == 384
        assert m.thread_contexts == 8
        assert m.memory_latency == 200
        assert m.mshr_entries == 16

    def test_frontend_depth_from_15_stages(self):
        assert MachineConfig().frontend_depth == 10

    def test_scaled_l2_copies(self):
        m = MachineConfig().scaled_l2(128 * 1024, 10)
        assert m.l2.size_bytes == 128 * 1024
        assert m.l2.hit_latency == 10
        assert m.dcache.size_bytes == MachineConfig().dcache.size_bytes

    def test_with_memory_latency(self):
        assert MachineConfig().with_memory_latency(300).memory_latency == 300

    def test_hashable_for_baseline_cache(self):
        assert hash(MachineConfig()) == hash(MachineConfig())

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            MachineConfig(width=0)
        with pytest.raises(ConfigError):
            MachineConfig(memory_latency=0)
        with pytest.raises(ConfigError):
            MachineConfig(rob_entries=2)


class TestEnergyConfig:
    def test_paper_shares_sum_to_one(self):
        assert sum(EnergyConfig().structure_shares.values()) == pytest.approx(
            1.0
        )

    def test_idle_factor_range(self):
        with pytest.raises(ConfigError):
            EnergyConfig(idle_factor=1.5)
        with pytest.raises(ConfigError):
            EnergyConfig(idle_factor=-0.1)

    def test_with_idle_factor(self):
        cfg = EnergyConfig().with_idle_factor(0.1)
        assert cfg.e_idle_per_cycle == 0.1

    def test_joules_conversion(self):
        cfg = EnergyConfig()
        assert cfg.joules(2.0) == pytest.approx(2.0 * cfg.e_max_per_cycle)

    def test_bad_shares_rejected(self):
        with pytest.raises(ConfigError):
            EnergyConfig(structure_shares={"bpred": 0.5})


class TestSelectionConfig:
    def test_paper_defaults(self):
        s = SelectionConfig()
        assert s.slicing_window == 2048
        assert s.max_pthread_insts == 64

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            SelectionConfig(slicing_window=1)
        with pytest.raises(ConfigError):
            SelectionConfig(composition_weight=2.0)
        with pytest.raises(ConfigError):
            SelectionConfig(load_cost_model="magic")


class TestSimulationConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            SimulationConfig(max_instructions=0)
        with pytest.raises(ConfigError):
            SimulationConfig(sample_fraction=0.0)
        with pytest.raises(ConfigError):
            SimulationConfig(warmup_fraction=1.0)
