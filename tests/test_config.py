"""Validation tests for the configuration dataclasses."""

import pytest

from repro.config import (
    CacheConfig,
    EnergyConfig,
    MachineConfig,
    SelectionConfig,
    SimulationConfig,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_paper_geometries_valid(self):
        CacheConfig(32 * 1024, 2, 64, 1)
        CacheConfig(16 * 1024, 2, 64, 2)
        CacheConfig(256 * 1024, 4, 64, 12)

    def test_n_sets(self):
        assert CacheConfig(256 * 1024, 4, 64, 12).n_sets == 1024

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=0, assoc=2, line_bytes=64, hit_latency=1),
            dict(size_bytes=1000, assoc=2, line_bytes=64, hit_latency=1),
            dict(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=0),
            dict(size_bytes=64 * 3 * 2, assoc=2, line_bytes=64, hit_latency=1),
        ],
    )
    def test_bad_geometries_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig(**kwargs)


class TestMachineConfig:
    def test_paper_defaults(self):
        m = MachineConfig()
        assert m.width == 6
        assert m.rob_entries == 128
        assert m.rs_entries == 80
        assert m.physical_registers == 384
        assert m.thread_contexts == 8
        assert m.memory_latency == 200
        assert m.mshr_entries == 16

    def test_frontend_depth_from_15_stages(self):
        assert MachineConfig().frontend_depth == 10

    def test_scaled_l2_copies(self):
        m = MachineConfig().scaled_l2(128 * 1024, 10)
        assert m.l2.size_bytes == 128 * 1024
        assert m.l2.hit_latency == 10
        assert m.dcache.size_bytes == MachineConfig().dcache.size_bytes

    def test_with_memory_latency(self):
        assert MachineConfig().with_memory_latency(300).memory_latency == 300

    def test_hashable_for_baseline_cache(self):
        assert hash(MachineConfig()) == hash(MachineConfig())

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            MachineConfig(width=0)
        with pytest.raises(ConfigError):
            MachineConfig(memory_latency=0)
        with pytest.raises(ConfigError):
            MachineConfig(rob_entries=2)


class TestEnergyConfig:
    def test_paper_shares_sum_to_one(self):
        assert sum(EnergyConfig().structure_shares.values()) == pytest.approx(
            1.0
        )

    def test_idle_factor_range(self):
        with pytest.raises(ConfigError):
            EnergyConfig(idle_factor=1.5)
        with pytest.raises(ConfigError):
            EnergyConfig(idle_factor=-0.1)

    def test_with_idle_factor(self):
        cfg = EnergyConfig().with_idle_factor(0.1)
        assert cfg.e_idle_per_cycle == 0.1

    def test_joules_conversion(self):
        cfg = EnergyConfig()
        assert cfg.joules(2.0) == pytest.approx(2.0 * cfg.e_max_per_cycle)

    def test_bad_shares_rejected(self):
        with pytest.raises(ConfigError):
            EnergyConfig(structure_shares={"bpred": 0.5})


class TestSelectionConfig:
    def test_paper_defaults(self):
        s = SelectionConfig()
        assert s.slicing_window == 2048
        assert s.max_pthread_insts == 64

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            SelectionConfig(slicing_window=1)
        with pytest.raises(ConfigError):
            SelectionConfig(composition_weight=2.0)
        with pytest.raises(ConfigError):
            SelectionConfig(load_cost_model="magic")


class TestSimulationConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            SimulationConfig(max_instructions=0)
        with pytest.raises(ConfigError):
            SimulationConfig(sample_fraction=0.0)
        with pytest.raises(ConfigError):
            SimulationConfig(warmup_fraction=1.0)


class TestValidate:
    """``validate()`` names the offending field and its legal range,
    catching values that pass ``__post_init__``'s coarse checks."""

    def test_defaults_all_validate(self):
        assert MachineConfig().validate() is not None
        assert EnergyConfig().validate() is not None
        assert SelectionConfig().validate() is not None
        assert SimulationConfig().validate() is not None

    def test_validate_returns_self(self):
        machine = MachineConfig()
        assert machine.validate() is machine

    def test_error_names_field_and_range(self):
        with pytest.raises(
            ConfigError, match=r"MachineConfig\.pipeline_stages = 3"
        ):
            MachineConfig(pipeline_stages=3).validate()

    def test_machine_cross_field_constraints(self):
        with pytest.raises(ConfigError, match="pthread_rs_reserve"):
            MachineConfig(rs_entries=8, pthread_rs_reserve=8).validate()
        with pytest.raises(ConfigError, match="physical_registers"):
            MachineConfig(physical_registers=64).validate()

    def test_machine_power_of_two_fields(self):
        with pytest.raises(ConfigError, match="page_bytes"):
            MachineConfig(page_bytes=3000).validate()
        with pytest.raises(ConfigError, match="bpred_entries"):
            MachineConfig(bpred_entries=1000).validate()

    def test_machine_pthread_fetch_ipc_bounds(self):
        with pytest.raises(ConfigError, match="pthread_fetch_ipc"):
            MachineConfig(pthread_fetch_ipc=0.0).validate()
        with pytest.raises(ConfigError, match="pthread_fetch_ipc"):
            MachineConfig(pthread_fetch_ipc=7.5).validate()

    def test_machine_validates_cache_subconfigs(self):
        bad_l2 = CacheConfig(256 * 1024, 4, 64, 12)
        object.__setattr__(bad_l2, "hit_latency", 0)
        with pytest.raises(ConfigError, match=r"l2\.hit_latency"):
            MachineConfig(l2=bad_l2).validate()

    def test_energy_access_fraction_bounds(self):
        with pytest.raises(ConfigError, match="e_l2_access"):
            EnergyConfig(e_l2_access=1.5).validate()

    def test_energy_physical_parameters(self):
        with pytest.raises(ConfigError, match="frequency_ghz"):
            EnergyConfig(frequency_ghz=0.0).validate()
        with pytest.raises(ConfigError, match="vdd"):
            EnergyConfig(vdd=-1.0).validate()

    def test_selection_ranges(self):
        with pytest.raises(ConfigError, match="min_miss_share"):
            SelectionConfig(min_miss_share=1.5).validate()
        with pytest.raises(ConfigError, match="embedded_latency_factor"):
            SelectionConfig(embedded_latency_factor=0.5).validate()
        with pytest.raises(ConfigError, match="min_gain_cycles"):
            SelectionConfig(min_gain_cycles=-1).validate()

    def test_simulation_seed_non_negative(self):
        with pytest.raises(ConfigError, match="seed"):
            SimulationConfig(seed=-1).validate()
        with pytest.raises(ConfigError, match="sample_instructions"):
            SimulationConfig(sample_instructions=0).validate()
