"""The full server resilience drill, end-to-end: a real ``repro serve``
subprocess under injected faults is ``kill -9``'d mid-grid, restarted
with ``--resume``, and must deliver every acknowledged job exactly once,
bit-identical to a fault-free reference."""

import pytest

from repro.harness.chaos import run_server_chaos


@pytest.mark.slow
def test_kill9_resume_exactly_once():
    report = run_server_chaos(quick=True)
    assert report["ok"], report
    # Every acknowledged job accounted for...
    assert report["lost_jobs"] == []
    assert report["failed_jobs"] == []
    # ...exactly once...
    assert report["duplicate_completions"] == []
    # ...bit-identical to the reference...
    assert report["mismatched_rows"] == []
    assert report["identical_rows"] == report["acked"] >= 2
    # ...and the restarted server drained cleanly on SIGTERM.
    assert report["drain_exit_code"] == 0
