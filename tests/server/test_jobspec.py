"""Spec normalization and job construction: the wire format must map
deterministically onto engine jobs (the dedup key depends on it)."""

import pytest

from repro.errors import ConfigError, WorkloadError
from repro.server.jobspec import SPEC_KEYS, job_from_spec, normalize_spec


def test_defaults_dropped_for_canonical_form():
    spec = normalize_spec(
        {"benchmark": "gcc", "target": "L", "profile_input": "train",
         "run_input": "train"}
    )
    assert spec == {"benchmark": "gcc"}


def test_equivalent_specs_share_a_cell_key():
    minimal = normalize_spec({"benchmark": "gcc"})
    spelled = normalize_spec({"benchmark": "gcc", "target": "L"})
    assert (
        job_from_spec(minimal).cell_key()
        == job_from_spec(spelled).cell_key()
    )


def test_knobs_change_the_cell_key():
    base = job_from_spec(normalize_spec({"benchmark": "gcc"})).cell_key()
    for knob in (
        {"target": "E"},
        {"idle_factor": 0.5},
        {"memory_latency": 400},
        {"l2_kb": 512, "l2_latency": 12},
        {"include_branch_pthreads": True},
    ):
        spec = normalize_spec({"benchmark": "gcc", **knob})
        assert job_from_spec(spec).cell_key() != base, knob


def test_non_object_spec_rejected():
    with pytest.raises(ConfigError):
        normalize_spec(["benchmark", "gcc"])


def test_unknown_keys_rejected_with_allowed_list():
    with pytest.raises(ConfigError) as excinfo:
        normalize_spec({"benchmark": "gcc", "benchmrak": "oops"})
    message = str(excinfo.value)
    assert "benchmrak" in message
    for key in SPEC_KEYS:
        assert key in message


def test_unknown_benchmark_is_a_workload_error():
    with pytest.raises(WorkloadError) as excinfo:
        normalize_spec({"benchmark": "nosuch"})
    assert "nosuch" in str(excinfo.value)
    assert "gcc" in str(excinfo.value)  # lists what IS available


def test_missing_benchmark_rejected():
    with pytest.raises(ConfigError):
        normalize_spec({})


def test_unknown_target_rejected():
    with pytest.raises(ConfigError):
        normalize_spec({"benchmark": "gcc", "target": "Z"})


def test_l2_knobs_must_come_together():
    with pytest.raises(ConfigError):
        normalize_spec({"benchmark": "gcc", "l2_kb": 512})
    with pytest.raises(ConfigError):
        normalize_spec({"benchmark": "gcc", "l2_latency": 12})


def test_bool_is_not_a_number():
    with pytest.raises(ConfigError):
        normalize_spec({"benchmark": "gcc", "idle_factor": True})


def test_tag_canonicalized_sorted():
    spec = normalize_spec(
        {"benchmark": "gcc", "tag": {"b": 2, "a": 1}}
    )
    assert list(spec["tag"]) == ["a", "b"]
    # An empty tag is a default and drops out entirely.
    assert "tag" not in normalize_spec({"benchmark": "gcc", "tag": {}})


def test_tag_must_be_an_object():
    with pytest.raises(ConfigError):
        normalize_spec({"benchmark": "gcc", "tag": "prod"})


def test_job_from_spec_applies_knobs():
    job = job_from_spec(
        normalize_spec(
            {"benchmark": "mcf", "target": "E", "idle_factor": 0.5,
             "memory_latency": 400}
        )
    )
    assert job.benchmark == "mcf"
    assert job.target.label == "E"
    assert job.machine.memory_latency == 400
    assert job.energy.idle_factor == 0.5
