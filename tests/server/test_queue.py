"""Job-queue semantics with injectable stub runners: dedup, cancel,
deadlines, breaker feedback, drain, and the exactly-once ledger."""

import json
import threading
import time

import pytest

from repro.errors import (
    AdmissionRejectedError,
    CacheCorruptionError,
    ExecutionError,
    WorkerCrashError,
)
from repro.server.admission import AdmissionController
from repro.server.breaker import CircuitBreaker
from repro.server.queue import JobQueue, JobState
from repro.server.state import ServerState


def _row(job):
    return {"benchmark": job.benchmark, "target": job.target.label}


def _queue(tmp_path, runner=_row, **kwargs):
    state = ServerState(str(tmp_path / "state"))
    q = JobQueue(state, runner=runner, **kwargs)
    q.start()
    return q


def test_submit_runs_to_done(tmp_path):
    q = _queue(tmp_path)
    try:
        record = q.submit({"benchmark": "gcc"})
        assert record.job_id == "job-000001"
        assert q.wait_idle(10.0)
        assert record.state == JobState.DONE
        payload = record.result_payload()
        assert payload["row"] == {"benchmark": "gcc", "target": "L"}
        assert payload["job_id"] == "job-000001"
    finally:
        q.close()


def test_accept_ledger_written_before_submit_returns(tmp_path):
    q = _queue(tmp_path)
    try:
        record = q.submit({"benchmark": "gcc"})
        lines = [
            json.loads(line)
            for line in open(q.state.accepted_path, encoding="utf-8")
        ]
        assert lines[0]["job_id"] == record.job_id
        assert lines[0]["key"] == record.cell_key
        assert lines[0]["spec"] == {"benchmark": "gcc"}
    finally:
        q.close()


def test_identical_inflight_submits_attach(tmp_path):
    gate = threading.Event()

    def runner(job):
        gate.wait(5.0)
        return _row(job)

    q = _queue(tmp_path, runner=runner, workers=1)
    try:
        first = q.submit({"benchmark": "gcc"})
        time.sleep(0.05)  # let the worker pick it up
        second = q.submit({"benchmark": "gcc", "target": "L"})
        assert second.dedup_of == first.job_id
        assert second.job_id in first.attached
        gate.set()
        assert q.wait_idle(10.0)
        assert first.state == JobState.DONE
        assert second.state == JobState.DONE
        assert second.result_payload()["row"] == first.result_payload()["row"]
    finally:
        gate.set()
        q.close()


def test_completed_cell_answers_instantly_from_journal(tmp_path):
    q = _queue(tmp_path)
    try:
        q.submit({"benchmark": "gcc"})
        assert q.wait_idle(10.0)
        repeat = q.submit({"benchmark": "gcc"})
        # No queue round-trip: DONE at submit time.
        assert repeat.state == JobState.DONE
        assert repeat.result_payload()["row"]["benchmark"] == "gcc"
    finally:
        q.close()


def test_cancel_queued_job(tmp_path):
    gate = threading.Event()

    def runner(job):
        gate.wait(5.0)
        return _row(job)

    q = _queue(tmp_path, runner=runner, workers=1)
    try:
        q.submit({"benchmark": "gcc"})
        time.sleep(0.05)
        victim = q.submit({"benchmark": "mcf"})
        cancelled, detail = q.cancel(victim.job_id)
        assert cancelled and detail == "cancelled"
        assert victim.state == JobState.CANCELLED
        gate.set()
        assert q.wait_idle(10.0)
        assert victim.state == JobState.CANCELLED  # never resurrected
    finally:
        gate.set()
        q.close()


def test_cancel_refuses_unknown_running_and_terminal(tmp_path):
    gate = threading.Event()

    def runner(job):
        gate.wait(5.0)
        return _row(job)

    q = _queue(tmp_path, runner=runner, workers=1)
    try:
        running = q.submit({"benchmark": "gcc"})
        time.sleep(0.05)
        assert q.cancel("job-999999") == (False, "unknown job")
        ok, detail = q.cancel(running.job_id)
        assert not ok and "running" in detail
        gate.set()
        assert q.wait_idle(10.0)
        ok, detail = q.cancel(running.job_id)
        assert not ok and "done" in detail
    finally:
        gate.set()
        q.close()


def test_deadline_expires_queued_job(tmp_path):
    gate = threading.Event()

    def runner(job):
        gate.wait(5.0)
        return _row(job)

    q = _queue(tmp_path, runner=runner, workers=1)
    try:
        q.submit({"benchmark": "gcc"})
        time.sleep(0.05)
        late = q.submit({"benchmark": "mcf"}, deadline_s=0.05)
        time.sleep(0.2)  # deadline passes while it waits in the queue
        gate.set()
        assert q.wait_idle(10.0)
        assert late.state == JobState.FAILED
        assert late.error["error"] == "SimulationTimeoutError"
        assert late.error["retryable"] is True
    finally:
        gate.set()
        q.close()


def test_worker_crashes_trip_pool_breaker_then_shed(tmp_path):
    def crash(job):
        raise WorkerCrashError("worker died", benchmark=job.benchmark)

    pool = CircuitBreaker("pool", failure_threshold=2)
    admission = AdmissionController(max_queue_depth=8, pool_breaker=pool)
    q = _queue(
        tmp_path, runner=crash, workers=1,
        pool_breaker=pool, admission=admission,
    )
    try:
        first = q.submit({"benchmark": "gcc"})
        assert q.wait_idle(10.0)
        second = q.submit({"benchmark": "mcf"})
        assert q.wait_idle(10.0)
        assert first.state == JobState.FAILED
        assert second.state == JobState.FAILED
        assert pool.state() == "open"
        with pytest.raises(AdmissionRejectedError) as excinfo:
            q.submit({"benchmark": "parser"})
        assert excinfo.value.context["reason"] == "breaker_open"
    finally:
        q.close()


def test_deterministic_job_error_does_not_trip_pool_breaker(tmp_path):
    def bad_job(job):
        raise ExecutionError("this job is broken, the pool is fine")

    pool = CircuitBreaker("pool", failure_threshold=1)
    q = _queue(tmp_path, runner=bad_job, workers=1, pool_breaker=pool)
    try:
        record = q.submit({"benchmark": "gcc"})
        assert q.wait_idle(10.0)
        assert record.state == JobState.FAILED
        assert record.error["retryable"] is False
        assert pool.state() == "closed"
    finally:
        q.close()


def test_cache_corruption_opens_cache_breaker_and_bypasses(tmp_path):
    calls = []

    def flaky_cache(job):
        calls.append(job.benchmark)
        if len(calls) == 1:
            raise CacheCorruptionError("bad pickle", key="k")
        return _row(job)

    cache = CircuitBreaker("simcache", failure_threshold=1)
    q = _queue(tmp_path, runner=flaky_cache, workers=1, cache_breaker=cache)
    try:
        first = q.submit({"benchmark": "gcc"})
        assert q.wait_idle(10.0)
        assert first.state == JobState.FAILED
        assert cache.state() == "open"
        # Jobs are NOT shed while the cache breaker is open -- they run
        # with the cache bypassed instead.
        second = q.submit({"benchmark": "mcf"})
        assert q.wait_idle(10.0)
        assert second.state == JobState.DONE
    finally:
        q.close()


def test_queue_full_sheds_with_retry_after(tmp_path):
    gate = threading.Event()

    def runner(job):
        gate.wait(5.0)
        return _row(job)

    admission = AdmissionController(max_queue_depth=1, workers=1)
    q = _queue(tmp_path, runner=runner, workers=1, admission=admission)
    try:
        q.submit({"benchmark": "gcc"})
        time.sleep(0.05)
        q.submit({"benchmark": "mcf"})  # depth 1: at the bound now
        with pytest.raises(AdmissionRejectedError) as excinfo:
            q.submit({"benchmark": "parser"})
        assert excinfo.value.context["reason"] == "queue_full"
        assert excinfo.value.context["retry_after_s"] >= 1
    finally:
        gate.set()
        q.close()


def test_shed_submit_leaves_no_ledger_trace(tmp_path):
    admission = AdmissionController(max_queue_depth=1, workers=1)
    gate = threading.Event()

    def runner(job):
        gate.wait(5.0)
        return _row(job)

    q = _queue(tmp_path, runner=runner, workers=1, admission=admission)
    try:
        q.submit({"benchmark": "gcc"})
        time.sleep(0.05)
        q.submit({"benchmark": "mcf"})
        before = open(q.state.accepted_path, encoding="utf-8").read()
        with pytest.raises(AdmissionRejectedError):
            q.submit({"benchmark": "parser"})
        after = open(q.state.accepted_path, encoding="utf-8").read()
        assert before == after
    finally:
        gate.set()
        q.close()


def test_draining_queue_refuses_submits(tmp_path):
    q = _queue(tmp_path)
    q.close()
    with pytest.raises(AdmissionRejectedError) as excinfo:
        q.submit({"benchmark": "gcc"})
    assert excinfo.value.context["reason"] == "draining"


def test_resume_reenqueues_pending_and_registers_done(tmp_path):
    state_dir = str(tmp_path / "state")
    q = JobQueue(ServerState(state_dir), runner=_row, workers=1)
    q.start()
    done = q.submit({"benchmark": "gcc"})
    assert q.wait_idle(10.0)
    assert done.state == JobState.DONE
    q.close()

    # Simulate a crash with one accepted-but-unfinished job: append the
    # ledger record by hand (what a kill -9 mid-run leaves behind).
    crashed = JobQueue(ServerState(state_dir), runner=_row, workers=1)
    crashed.state.load()
    crashed.state.record_accept(
        "job-000002", "some-other-key", {"benchmark": "mcf"}
    )
    crashed.state.close()

    fresh = JobQueue(ServerState(state_dir), runner=_row, workers=1)
    resumed = fresh.recover(resume=True)
    fresh.start()
    try:
        # Only the unfinished job re-enqueued...
        assert resumed == 1
        # ...but the completed one is still addressable, instantly DONE.
        replayed = fresh.get("job-000001")
        assert replayed is not None
        assert replayed.state == JobState.DONE
        assert fresh.wait_idle(10.0)
        assert fresh.get("job-000002").state == JobState.DONE
        # New IDs continue after the highest ledgered ordinal.
        assert fresh.submit({"benchmark": "parser"}).job_id == "job-000003"
    finally:
        fresh.close()


def test_no_resume_still_seeds_ids_and_dedup(tmp_path):
    state_dir = str(tmp_path / "state")
    q = JobQueue(ServerState(state_dir), runner=_row, workers=1)
    q.start()
    q.submit({"benchmark": "gcc"})
    assert q.wait_idle(10.0)
    q.close()

    fresh = JobQueue(ServerState(state_dir), runner=_row, workers=1)
    assert fresh.recover(resume=False) == 0
    fresh.start()
    try:
        assert fresh.get("job-000001") is None  # nothing re-registered
        repeat = fresh.submit({"benchmark": "gcc"})
        assert repeat.job_id == "job-000002"  # counter continued
        assert repeat.state == JobState.DONE  # journal still dedups
    finally:
        fresh.close()
