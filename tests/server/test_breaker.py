"""Circuit-breaker state machine, driven by an injectable clock."""

from repro.server.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(**kwargs):
    clock = FakeClock()
    breaker = CircuitBreaker(
        "test",
        failure_threshold=kwargs.pop("failure_threshold", 3),
        recovery_after_s=kwargs.pop("recovery_after_s", 5.0),
        clock=clock,
        **kwargs,
    )
    return breaker, clock


def test_closed_allows():
    breaker, _ = _breaker()
    assert breaker.state() == CLOSED
    assert breaker.allow()


def test_failures_below_threshold_stay_closed():
    breaker, _ = _breaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state() == CLOSED
    assert breaker.allow()


def test_threshold_opens_and_rejects():
    breaker, _ = _breaker(failure_threshold=3)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state() == OPEN
    assert not breaker.allow()


def test_success_resets_failure_streak():
    breaker, _ = _breaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state() == CLOSED


def test_retry_after_counts_down_with_clock():
    breaker, clock = _breaker(failure_threshold=1, recovery_after_s=5.0)
    breaker.record_failure()
    assert breaker.retry_after_s() == 5.0
    clock.advance(3.0)
    assert breaker.retry_after_s() == 2.0
    clock.advance(1.5)
    # Never reports less than a second.
    assert breaker.retry_after_s() == 1.0


def test_half_open_after_recovery_window():
    breaker, clock = _breaker(failure_threshold=1, recovery_after_s=5.0)
    breaker.record_failure()
    assert breaker.state() == OPEN
    clock.advance(5.0)
    assert breaker.state() == HALF_OPEN


def test_half_open_admits_limited_probes():
    breaker, clock = _breaker(
        failure_threshold=1, recovery_after_s=5.0, half_open_probes=1
    )
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # a second concurrent trial is rejected


def test_probe_success_closes():
    breaker, clock = _breaker(failure_threshold=1, recovery_after_s=5.0)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state() == CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_and_restarts_clock():
    breaker, clock = _breaker(failure_threshold=1, recovery_after_s=5.0)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state() == OPEN
    # The recovery clock restarted at the probe failure.
    clock.advance(4.9)
    assert breaker.state() == OPEN
    clock.advance(0.2)
    assert breaker.state() == HALF_OPEN


def test_snapshot_shape():
    breaker, _ = _breaker(failure_threshold=2)
    breaker.record_failure()
    snap = breaker.snapshot()
    assert snap == {
        "name": "test",
        "state": CLOSED,
        "consecutive_failures": 1,
        "failure_threshold": 2,
    }
