"""HTTP front-end end-to-end (in-process server, stub runners) and the
error-taxonomy contract: every error class maps to a stable status, and
``Retry-After`` is present exactly when ``is_retryable`` says so."""

import threading
import time

import pytest

from repro import errors, faults
from repro.errors import (
    AdmissionRejectedError,
    ConfigError,
    JobCancelledError,
    ReproError,
    WorkerCrashError,
    is_retryable,
)
from repro.server.admission import AdmissionController
from repro.server.app import ExperimentServer, status_for_error
from repro.server.client import ServerClient
from repro.server.queue import JobQueue
from repro.server.state import ServerState


def _row(job):
    return {"benchmark": job.benchmark, "target": job.target.label}


class _Server:
    """In-process server + client bound to a stub runner."""

    def __init__(self, tmp_path, runner=_row, **queue_kwargs):
        self.state = ServerState(str(tmp_path / "state"))
        self.queue = JobQueue(self.state, runner=runner, **queue_kwargs)
        self.server = ExperimentServer(self.queue, port=0)
        self.server.start(resume=False)
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()
        self.client = ServerClient(self.server.url, timeout_s=10.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.server.shutdown_and_drain()
        self._thread.join(timeout=10.0)


# --------------------------------------------------------------------- #
# The taxonomy contract (exhaustive, at the mapping layer).


def _all_error_classes():
    seen = set()
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        stack.extend(cls.__subclasses__())
    return sorted(seen, key=lambda cls: cls.__name__)


def test_every_error_class_has_coherent_status_and_retry_after():
    classes = _all_error_classes()
    assert len(classes) > 10  # the walk found the real taxonomy
    for cls in classes:
        exc = cls("boom")
        status, retry = status_for_error(exc)
        # The invariant: Retry-After present iff the error is retryable.
        assert (retry is not None) == is_retryable(exc), cls.__name__
        if is_retryable(exc):
            assert status in (429, 503), cls.__name__
        else:
            assert status in (400, 410, 500), cls.__name__


def test_non_retryable_members_map_to_4xx_5xx_deterministically():
    for cls in errors.NON_RETRYABLE:
        status, retry = status_for_error(cls("boom"))
        assert retry is None, cls.__name__
        # Same class, same request -> same status, every time.
        assert status == status_for_error(cls("boom"))[0]


def test_queue_full_is_429_other_sheds_503():
    full = AdmissionRejectedError(
        "full", reason="queue_full", retry_after_s=7
    )
    assert status_for_error(full) == (429, 7)
    breaker = AdmissionRejectedError(
        "open", reason="breaker_open", retry_after_s=3
    )
    assert status_for_error(breaker) == (503, 3)
    draining = AdmissionRejectedError(
        "draining", reason="draining", retry_after_s=5
    )
    assert status_for_error(draining) == (503, 5)


def test_unknown_exception_is_retryable_503():
    status, retry = status_for_error(RuntimeError("who knows"))
    assert status == 503 and retry is not None


# --------------------------------------------------------------------- #
# End-to-end through real sockets.


def test_submit_status_result_roundtrip(tmp_path):
    with _Server(tmp_path) as srv:
        submit = srv.client.submit({"benchmark": "gcc"})
        assert submit.status == 202
        job_id = submit.body["job_id"]
        assert submit.body["state"] in ("queued", "running", "done")
        final = srv.client.wait(job_id)
        assert final.status == 200
        assert final.body["row"] == {"benchmark": "gcc", "target": "L"}
        status = srv.client.status(job_id)
        assert status.status == 200
        assert status.body["state"] == "done"
        assert isinstance(status.body["events"], list)


def test_health_metrics_stats_jobs(tmp_path):
    from repro.obs import prom

    with _Server(tmp_path) as srv:
        assert srv.client.healthz().status == 200
        ready = srv.client.readyz()
        assert ready.status == 200 and ready.body["ready"] is True
        metrics = srv.client.metrics()
        assert metrics.status == 200
        # /metrics is now the Prometheus text exposition, not JSON.
        families = prom.parse_prometheus_text(metrics.text)
        assert "server_queue_depth" in families
        assert families["server_queue_depth"]["type"] == "gauge"
        stats = srv.client.stats()
        assert stats.status == 200
        assert stats.body["breakers"][0]["name"] == "pool"
        srv.client.submit({"benchmark": "gcc"})
        jobs = srv.client.jobs()
        assert jobs.status == 200 and len(jobs.body["jobs"]) == 1


def test_bad_specs_are_400_without_retry_after(tmp_path):
    with _Server(tmp_path) as srv:
        for spec in (
            {"benchmark": "nosuch"},
            {"benchmark": "gcc", "typo_key": 1},
            {"benchmark": "gcc", "target": "Z"},
            "not an object",
        ):
            response = srv.client.submit(spec)
            assert response.status == 400, spec
            assert response.retry_after_s is None, spec
            assert response.body["retryable"] is False, spec


def test_unknown_job_is_404_everywhere(tmp_path):
    with _Server(tmp_path) as srv:
        assert srv.client.status("job-999999").status == 404
        assert srv.client.result("job-999999").status == 404
        assert srv.client.cancel("job-999999").status == 404


def test_cancel_done_job_is_409_cancelled_result_is_410(tmp_path):
    gate = threading.Event()

    def runner(job):
        gate.wait(5.0)
        return _row(job)

    with _Server(tmp_path, runner=runner, workers=1) as srv:
        first = srv.client.submit({"benchmark": "gcc"}).body["job_id"]
        time.sleep(0.05)
        victim = srv.client.submit({"benchmark": "mcf"}).body["job_id"]
        cancelled = srv.client.cancel(victim)
        assert cancelled.status == 200
        result = srv.client.result(victim)
        assert result.status == 410
        assert result.retry_after_s is None
        gate.set()
        srv.client.wait(first)
        again = srv.client.cancel(first)
        assert again.status == 409
        assert again.body["cancelled"] is False


def test_failed_job_result_status_tracks_retryability(tmp_path):
    def crash(job):
        if job.benchmark == "gcc":
            raise WorkerCrashError("pool fell over")  # retryable
        raise ConfigError("deterministically bad")  # not retryable

    with _Server(tmp_path, runner=crash) as srv:
        transient = srv.client.submit({"benchmark": "gcc"}).body["job_id"]
        final = srv.client.wait(transient)
        assert final.status == 503
        assert final.retry_after_s is not None
        permanent = srv.client.submit({"benchmark": "mcf"}).body["job_id"]
        final = srv.client.wait(permanent)
        assert final.status == 500
        assert final.retry_after_s is None


def test_queue_full_sheds_429_with_retry_after_header(tmp_path):
    gate = threading.Event()

    def runner(job):
        gate.wait(5.0)
        return _row(job)

    admission = AdmissionController(max_queue_depth=1, workers=1)
    with _Server(
        tmp_path, runner=runner, workers=1, admission=admission
    ) as srv:
        srv.client.submit({"benchmark": "gcc"})
        time.sleep(0.05)
        srv.client.submit({"benchmark": "mcf"})
        shed = srv.client.submit({"benchmark": "parser"})
        assert shed.status == 429
        assert shed.shed
        assert shed.retry_after_s >= 1
        gate.set()


def test_accept_fault_drops_connection_without_acknowledging(tmp_path):
    with _Server(tmp_path) as srv:
        with faults.active(["server.accept:1"]):
            dropped = srv.client.submit({"benchmark": "gcc"})
        assert dropped.dropped  # transport error, no HTTP status
        assert srv.queue.jobs() == []  # nothing was accepted


def test_respond_fault_is_the_ambiguous_window(tmp_path):
    with _Server(tmp_path) as srv:
        with faults.active(["server.respond:1"]):
            dropped = srv.client.submit({"benchmark": "gcc"})
        assert dropped.dropped
        # The work WAS accepted and ran; a retried submit dedups onto it.
        assert len(srv.queue.jobs()) == 1
        retry = srv.client.submit({"benchmark": "gcc"})
        assert retry.status == 202
        final = srv.client.wait(retry.body["job_id"])
        assert final.status == 200
        assert final.body["row"]["benchmark"] == "gcc"


def test_cancelled_error_through_http_holds_invariant(tmp_path):
    # JobCancelledError is NON_RETRYABLE: 410, no Retry-After.
    status, retry = status_for_error(JobCancelledError("cancelled"))
    assert status == 410 and retry is None


def test_draining_server_sheds_and_reports_not_ready(tmp_path):
    srv = _Server(tmp_path)
    with srv:
        srv.queue._closed = True  # simulate drain without stopping HTTP
        shed = srv.client.submit({"benchmark": "gcc"})
        assert shed.status == 503
        assert shed.retry_after_s is not None
        ready = srv.client.readyz()
        assert ready.status == 503
        assert ready.body["ready"] is False
        assert ready.retry_after_s is not None
        srv.queue._closed = False  # let shutdown drain normally


@pytest.mark.parametrize("deadline", ["soon", [1]])
def test_bad_deadline_is_400(tmp_path, deadline):
    with _Server(tmp_path) as srv:
        response = srv.client.submit(
            {"benchmark": "gcc"}, deadline_s=deadline
        )
        assert response.status == 400
