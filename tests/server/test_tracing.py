"""End-to-end distributed tracing: one trace id from the client's HTTP
span through admission, queue wait, and the engine's per-phase spans,
exportable as a single Chrome trace."""

import threading
import time

import pytest

from repro.obs import tracectx
from repro.obs.export import build_span_trace, validate_chrome_trace
from repro.server.app import ExperimentServer
from repro.server.client import ServerClient
from repro.server.queue import JobQueue
from repro.server.state import ServerState


@pytest.fixture
def srv(tmp_path):
    state = ServerState(str(tmp_path / "state"))
    queue = JobQueue(state, workers=1)  # default runner: the real engine
    server = ExperimentServer(queue, port=0)
    server.start(resume=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServerClient(server.url, timeout_s=30.0)
    server.shutdown_and_drain()
    thread.join(timeout=10.0)


def _ancestors(span, by_id):
    seen = []
    parent = span.parent_span_id
    while parent is not None and parent in by_id:
        seen.append(by_id[parent])
        parent = by_id[parent].parent_span_id
    return seen


def test_one_trace_spans_client_server_and_engine(srv, tmp_path):
    tracectx.drain()
    root = tracectx.new_context()
    with tracectx.activate(root):
        submit = srv.submit({"benchmark": "gcc", "target": "L"})
        assert submit.status == 202
        assert submit.body["trace_id"] == root.trace_id
        final = srv.wait(submit.body["job_id"])
    assert final.status == 200
    assert final.body["trace_id"] == root.trace_id

    spans = tracectx.drain()
    names = {s.name for s in spans}
    # Client HTTP spans + server queue spans + engine phase spans, all
    # in the root's trace.
    assert {s.trace_id for s in spans} == {root.trace_id}
    assert "http POST /v1/experiments" in names
    assert "admission" in names
    assert "queue.wait" in names
    assert "job" in names
    assert "experiment" in names
    assert "simulate" in names

    by_id = {s.span_id: s for s in spans}
    post = next(s for s in spans if s.name == "http POST /v1/experiments")
    sim = next(s for s in spans if s.name == "simulate")
    # The client's POST span is an ancestor of the engine's sim span:
    # the lineage crossed the HTTP boundary intact.  (Both descend from
    # the root; the POST span *minted* the traceparent the server saw.)
    sim_line = _ancestors(sim, by_id)
    assert any(a.span_id == post.parent_span_id for a in sim_line) or (
        root.span_id == post.parent_span_id
        and any(a.parent_span_id == root.span_id for a in sim_line)
    )
    exp = next(s for s in spans if s.name == "experiment")
    assert exp.parent_span_id is not None
    assert any(a.name == "job" for a in _ancestors(exp, by_id))

    doc = build_span_trace(spans)
    assert validate_chrome_trace(doc) == []


def test_untraced_submit_carries_no_trace(srv):
    tracectx.drain()
    assert tracectx.current() is None
    submit = srv.submit({"benchmark": "gcc", "target": "L"})
    assert submit.status == 202
    assert "trace_id" not in submit.body
    final = srv.wait(submit.body["job_id"])
    assert final.status == 200
    assert "trace_id" not in final.body
    assert "spans" not in final.body
    # Nothing leaked into the recorder from the untraced path.
    assert tracectx.drain() == []


def test_result_repoll_does_not_duplicate_spans(srv):
    tracectx.drain()
    root = tracectx.new_context()
    with tracectx.activate(root):
        submit = srv.submit({"benchmark": "gcc", "target": "L"})
        job_id = submit.body["job_id"]
        srv.wait(job_id)
        before = tracectx.span_count()
        srv.result(job_id)  # terminal payload ships the same spans again
        srv.result(job_id)
        after = tracectx.span_count()
    # Each re-poll adds exactly one local HTTP span; the shipped server
    # spans dedup on (trace_id, span_id).
    assert after == before + 2
    tracectx.drain()


def test_queue_wait_span_brackets_the_job(srv):
    tracectx.drain()
    root = tracectx.new_context()
    with tracectx.activate(root):
        submit = srv.submit({"benchmark": "gcc", "target": "L"})
        srv.wait(submit.body["job_id"])
    spans = tracectx.drain()
    wait = next(s for s in spans if s.name == "queue.wait")
    job = next(s for s in spans if s.name == "job")
    assert wait.attrs["job_id"] == submit.body["job_id"]
    assert wait.start_s == pytest.approx(job.start_s)
    assert wait.end_s <= job.end_s + 1e-6
    assert job.end_s <= time.time()
