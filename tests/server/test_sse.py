"""Server-sent-event streaming: replay-then-tail ordering, resume via
``Last-Event-ID``, and disconnect detection freeing the handler."""

import threading
import time
import urllib.request

from repro import obs
from repro.server.app import _SSE_CLOSED, _SSE_OPENED, ExperimentServer
from repro.server.client import ServerClient
from repro.server.queue import JobQueue
from repro.server.state import ServerState


def _heartbeat(pct, eta=1.0):
    obs.log_event(
        "sim_heartbeat", level="debug", progress_pct=pct, eta_s=eta
    )


class _Server:
    """In-process server whose runner emits scripted heartbeats."""

    def __init__(self, tmp_path, runner, keepalive_s=0.1):
        self.state = ServerState(str(tmp_path / "state"))
        self.queue = JobQueue(self.state, runner=runner, workers=1)
        self.server = ExperimentServer(self.queue, port=0)
        self.server.sse_keepalive_s = keepalive_s
        self.server.start(resume=False)
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()
        self.client = ServerClient(self.server.url, timeout_s=10.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.server.shutdown_and_drain()
        self._thread.join(timeout=10.0)


def test_stream_replays_buffered_then_tails_live(tmp_path):
    buffered = threading.Event()
    release = threading.Event()

    def runner(job):
        for pct in (10.0, 20.0, 30.0):
            _heartbeat(pct)
        buffered.set()
        release.wait(5.0)
        for pct in (60.0, 90.0):
            _heartbeat(pct)
        return {"benchmark": job.benchmark}

    with _Server(tmp_path, runner) as srv:
        job_id = srv.client.submit({"benchmark": "gcc"}).body["job_id"]
        assert buffered.wait(5.0)
        # Release the runner shortly after the stream opens: the first
        # three frames are ring replay, the last two arrive live.
        threading.Timer(0.3, release.set).start()
        frames = list(srv.client.stream_events(job_id, timeout_s=10.0))
    heartbeats = [f for f in frames if f.get("event") == "sim_heartbeat"]
    assert [int(f["id"]) for f in heartbeats] == [1, 2, 3, 4, 5]
    assert [f["data"]["progress_pct"] for f in heartbeats] == [
        10.0, 20.0, 30.0, 60.0, 90.0,
    ]
    assert frames[-1]["event"] == "end"
    assert frames[-1]["data"]["state"] == "done"


def test_last_event_id_resumes_without_duplicates(tmp_path):
    def runner(job):
        for pct in (10.0, 20.0, 30.0, 60.0, 90.0):
            _heartbeat(pct)
        return {"benchmark": job.benchmark}

    with _Server(tmp_path, runner) as srv:
        job_id = srv.client.submit({"benchmark": "gcc"}).body["job_id"]
        srv.client.wait(job_id)
        first = list(srv.client.stream_events(job_id, timeout_s=10.0))
        beats = [f for f in first if f.get("event") == "sim_heartbeat"]
        assert [int(f["id"]) for f in beats] == [1, 2, 3, 4, 5]
        # Reconnect as if the client dropped after frame 3: only the
        # frames past the cursor come back, none are replayed twice.
        resumed = list(
            srv.client.stream_events(
                job_id, last_event_id="3", timeout_s=10.0
            )
        )
        resumed_beats = [
            f for f in resumed if f.get("event") == "sim_heartbeat"
        ]
        assert [int(f["id"]) for f in resumed_beats] == [4, 5]
        assert resumed[-1]["event"] == "end"


def test_unknown_job_stream_yields_nothing(tmp_path):
    with _Server(tmp_path, lambda job: {"ok": True}) as srv:
        assert list(srv.client.stream_events("job-999999")) == []


def test_client_disconnect_frees_the_tail(tmp_path):
    release = threading.Event()

    def runner(job):
        release.wait(10.0)
        return {"benchmark": job.benchmark}

    with _Server(tmp_path, runner, keepalive_s=0.05) as srv:
        job_id = srv.client.submit({"benchmark": "gcc"}).body["job_id"]
        opened = _SSE_OPENED.value
        closed = _SSE_CLOSED.value
        url = srv.server.url + f"/v1/experiments/{job_id}/events"
        resp = urllib.request.urlopen(url, timeout=5.0)
        assert resp.readline().startswith(b":")  # first keepalive probe
        assert _SSE_OPENED.value == opened + 1
        # Hang up without consuming the stream: the next keepalive
        # write hits the dead socket and the handler thread exits.
        resp.close()
        deadline = time.monotonic() + 5.0
        while _SSE_CLOSED.value < closed + 1:
            assert time.monotonic() < deadline, "tail thread never freed"
            time.sleep(0.02)
        release.set()
        srv.client.wait(job_id)
