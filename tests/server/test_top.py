"""The ``repro top`` dashboard: pure frame rendering and one polled
frame against a live in-process server."""

import io
import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import render_prometheus
from repro.server.app import ExperimentServer
from repro.server.queue import JobQueue
from repro.server.state import ServerState
from repro.server.top import render_frame, run_top

_STATS = {
    "queued_depth": 3,
    "running": 2,
    "draining": False,
    "jobs": {"queued": 3, "running": 2, "done": 7},
    "admission": {
        "p95_service_s": 1.5,
        "observed_completions": 7,
        "max_queue_depth": 64,
        "workers": 2,
    },
    "breakers": [
        {
            "name": "pool",
            "state": "closed",
            "consecutive_failures": 0,
            "failure_threshold": 5,
        },
        {
            "name": "simcache",
            "state": "open",
            "consecutive_failures": 5,
            "failure_threshold": 5,
        },
    ],
}


def _metrics_text():
    reg = MetricsRegistry()
    hist = reg.histogram("server.queue.wait_seconds")
    for v in (0.002, 0.004, 0.02, 0.02, 0.11, 4.0):
        hist.observe(v)
    return render_prometheus(reg)


def test_render_frame_shows_queue_breakers_and_phases():
    jobs = [
        {
            "job_id": "job-000001",
            "state": "running",
            "submitted_at": 100.0,
            "trace_id": "abcdef0123456789abcdef0123456789",
            "events": [
                {"progress_pct": 42.5, "eta_s": 7.2},
            ],
        },
        {
            "job_id": "job-000002",
            "state": "queued",
            "submitted_at": 101.0,
            "events": [],
        },
    ]
    frame = render_frame(
        _STATS, jobs, _metrics_text(), url="http://127.0.0.1:8080"
    )
    assert "repro top -- http://127.0.0.1:8080" in frame
    assert "queue: depth=3 running=2 draining=False" in frame
    assert "done=7 queued=3 running=2" in frame
    assert "pool=closed (fails=0/5)" in frame
    assert "simcache=open (fails=5/5)" in frame
    assert "phase latency" in frame
    assert "queue wait" in frame and "n=6" in frame
    # Newest job first; progress/ETA from the last buffered event; the
    # trace id column is truncated for width.
    lines = frame.splitlines()
    row1 = next(l for l in lines if l.startswith("job-000001"))
    assert "running" in row1 and "42.5%" in row1 and "7s" in row1
    assert "abcdef0123456789" in row1
    row2 = next(l for l in lines if l.startswith("job-000002"))
    assert "queued" in row2 and " - " in row2
    assert lines.index(row2) < lines.index(row1)  # newest first


def test_render_frame_tolerates_empty_and_malformed_inputs():
    frame = render_frame({}, [], "")
    assert "(no jobs)" in frame
    assert "jobs: none" in frame
    # A malformed /metrics body degrades to "no phase section", never a
    # crash mid-redraw.
    frame = render_frame({}, [], "### not prometheus {{{")
    assert "phase latency" not in frame
    frame = render_frame(
        {}, [{"job_id": "j", "events": [{"eta_s": "soon"}]}], ""
    )
    assert " - " in frame  # unparsable ETA renders as a dash


def test_run_top_once_against_live_server(tmp_path):
    state = ServerState(str(tmp_path / "state"))
    queue = JobQueue(
        state, runner=lambda job: {"benchmark": job.benchmark}, workers=1
    )
    server = ExperimentServer(queue, port=0)
    server.start(resume=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        from repro.server.client import ServerClient

        client = ServerClient(server.url, timeout_s=10.0)
        job_id = client.submit({"benchmark": "gcc"}).body["job_id"]
        client.wait(job_id)
        out = io.StringIO()
        code = run_top(server.url, iterations=1, out=out)
        assert code == 0
        frame = out.getvalue()
        assert "repro top" in frame
        assert "job-000001" in frame
        assert "\x1b[2J" not in frame  # --once never clears the screen
    finally:
        server.shutdown_and_drain()
        thread.join(timeout=10.0)


def test_run_top_unreachable_server_exits_nonzero():
    out = io.StringIO()
    code = run_top("http://127.0.0.1:1", iterations=1, out=out)
    assert code == 1
    assert "cannot reach" in out.getvalue()
