"""Admission control: bounded queue depth, breaker-aware shedding, and
the p95-derived Retry-After estimate."""

from repro.server.admission import AdmissionController
from repro.server.breaker import CircuitBreaker


def test_admits_below_depth_bound():
    admission = AdmissionController(max_queue_depth=4)
    decision = admission.admit(queue_depth=3)
    assert decision.admitted
    assert decision.reason == ""


def test_sheds_at_depth_bound():
    admission = AdmissionController(max_queue_depth=4)
    decision = admission.admit(queue_depth=4)
    assert not decision.admitted
    assert decision.reason == "queue_full"
    assert decision.retry_after_s >= 1
    assert decision.queue_depth == 4


def test_retry_after_uses_default_before_observations():
    admission = AdmissionController(
        max_queue_depth=8, workers=2, default_service_s=4.0
    )
    # No completions observed: estimate = default * (depth+1) / workers.
    assert admission.p95_service_s() == 4.0
    assert admission.retry_after_s(queue_depth=3) == round(4.0 * 4 / 2)


def test_retry_after_tracks_observed_p95():
    admission = AdmissionController(max_queue_depth=8, workers=1)
    for _ in range(20):
        admission.observe_service_time(2.0)
    assert admission.p95_service_s() == 2.0
    # retry_after = p95 * (depth + 1) / workers
    assert admission.retry_after_s(queue_depth=4) == 10


def test_retry_after_clamped_to_bounds():
    admission = AdmissionController(max_queue_depth=8, workers=1)
    admission.observe_service_time(0.001)
    assert admission.retry_after_s(queue_depth=0) == 1  # floor
    for _ in range(20):
        admission.observe_service_time(300.0)
    assert admission.retry_after_s(queue_depth=7) == 120  # ceiling


def test_open_pool_breaker_sheds():
    breaker = CircuitBreaker("pool", failure_threshold=1)
    breaker.record_failure()
    admission = AdmissionController(max_queue_depth=8, pool_breaker=breaker)
    decision = admission.admit(queue_depth=0)
    assert not decision.admitted
    assert decision.reason == "breaker_open"
    assert decision.retry_after_s >= 1


def test_breaker_shed_takes_precedence_over_depth():
    breaker = CircuitBreaker("pool", failure_threshold=1)
    breaker.record_failure()
    admission = AdmissionController(max_queue_depth=1, pool_breaker=breaker)
    assert admission.admit(queue_depth=5).reason == "breaker_open"


def test_snapshot_shape():
    admission = AdmissionController(max_queue_depth=16, workers=3)
    admission.observe_service_time(1.0)
    snap = admission.snapshot()
    assert snap["max_queue_depth"] == 16
    assert snap["workers"] == 3
    assert snap["observed_completions"] == 1
    assert snap["p95_service_s"] == 1.0
