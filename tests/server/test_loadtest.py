"""Load-model harness against a stub-runner server: outcome
classification, the report row, and the latency-budget math."""

import threading

import pytest

from repro.errors import ConfigError
from repro.server.app import ExperimentServer
from repro.server.client import Response
from repro.server.loadtest import _classify, run_loadtest
from repro.server.queue import JobQueue
from repro.server.state import ServerState


def _row(job):
    return {"benchmark": job.benchmark, "target": job.target.label}


@pytest.fixture()
def stub_server(tmp_path):
    state = ServerState(str(tmp_path / "state"))
    queue = JobQueue(state, runner=_row, workers=2)
    server = ExperimentServer(queue, port=0)
    server.start(resume=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.url
    server.shutdown_and_drain()
    thread.join(timeout=10.0)


def test_closed_loop_report_row(stub_server):
    report = run_loadtest(
        server_url=stub_server, mode="closed",
        benchmarks=("gcc", "mcf"), requests=8, concurrency=3,
        latency_budget_s=10.0,
    )
    row = report["row"]
    assert row["mode"] == "closed"
    assert row["requests"] == 8
    assert row["concurrency"] == 3
    assert row["ok"] == 8
    assert row["failed"] == 0
    assert row["failure_rate"] == 0.0
    assert row["shed_rate"] == 0.0
    assert row["throughput_rps"] > 0
    assert row["p95_latency_ms"] >= row["p50_latency_ms"] > 0
    # Latency-budget math: max_concurrent = budget / p95.
    assert row["latency_budget_s"] == 10.0
    expected = int(10.0 / (row["p95_latency_ms"] / 1000.0))
    assert row["max_concurrent_in_budget"] == expected
    assert len(report["samples"]) == 8
    # Every request ran under its own trace: the per-request rows in
    # run_table.csv can be joined against exported span waterfalls.
    trace_ids = [s["trace_id"] for s in report["samples"]]
    assert all(len(t) == 32 for t in trace_ids)
    assert len(set(trace_ids)) == 8
    assert all(s["benchmark"] in ("gcc", "mcf") for s in report["samples"])


def test_open_loop_report_row(stub_server):
    report = run_loadtest(
        server_url=stub_server, mode="open",
        benchmarks=("gcc",), requests=6, rate_rps=50.0,
    )
    row = report["row"]
    assert row["mode"] == "open"
    assert row["rate_rps"] == 50.0
    assert "concurrency" not in row
    assert row["ok"] == 6
    assert row["failure_rate"] == 0.0


def test_bad_mode_rejected():
    with pytest.raises(ConfigError):
        run_loadtest(server_url="http://127.0.0.1:1", mode="sideways")


def test_classification_rules():
    ok = Response(status=200)
    accepted = Response(status=202)
    shed = Response(status=429, retry_after_s=3)
    dropped = Response(status=0)
    failed = Response(status=500)
    assert _classify(ok, accepted) == "ok"
    assert _classify(failed, shed) == "shed"  # shed at submit wins
    assert _classify(dropped, accepted) == "dropped"
    assert _classify(ok, dropped) == "dropped"
    assert _classify(failed, accepted) == "failed"
    # A request still pending at wait-timeout is not a success.
    assert _classify(accepted, accepted) == "failed"
