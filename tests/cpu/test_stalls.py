"""Top-down stall attribution: the slot invariant and its breakdowns.

The property under test: every issue slot of every cycle is charged to
exactly one category, so ``stalls.total == width * cycles`` for any
program on any machine, and the breakdown is a pure function of the
simulated configuration (bit-identical between sequential and parallel
engine runs).
"""

import pytest

from repro.config import MachineConfig, SimulationConfig
from repro.cpu.pipeline import simulate
from repro.cpu.stats import (
    STALL_CATEGORIES,
    LatencyBreakdown,
    StallBreakdown,
)
from repro.frontend import tracestore
from repro.harness.experiment import clear_baseline_cache
from repro.harness.parallel import ExperimentJob, run_experiments
from repro.pthsel.targets import Target
from repro.workloads.registry import get_program

#: Three cheap benchmarks x two machine shapes (the paper's 6-wide
#: default and a narrow 4-wide core with half-size OOO structures).
BENCHMARKS = ("gap", "gcc", "vortex")
MACHINES = (
    MachineConfig(),
    MachineConfig(width=4, commit_width=4, rob_entries=64, rs_entries=40),
)


def _baseline_stats(benchmark, machine):
    program = get_program(benchmark, "train")
    trace, _ = tracestore.get_trace(
        program, SimulationConfig().max_instructions
    )
    return simulate(trace, machine)


class TestSlotInvariant:
    @pytest.mark.parametrize("bench", BENCHMARKS)
    @pytest.mark.parametrize("machine", MACHINES, ids=("w6", "w4"))
    def test_attributed_slots_equal_width_times_cycles(
        self, bench, machine
    ):
        stats = _baseline_stats(bench, machine)
        assert stats.cycles > 0
        assert stats.stalls.total == machine.width * stats.cycles
        stats.stalls.verify(machine.width, stats.cycles)  # same, loudly
        # Commit bandwidth >= issue width here, so every committed
        # instruction consumed exactly one retiring slot.
        assert stats.stalls.retiring == stats.committed
        assert all(v >= 0 for v in stats.stalls.as_dict().values())
        assert sum(stats.stalls.fractions().values()) == pytest.approx(1.0)


class TestEngineIdentity:
    def test_breakdowns_bit_identical_jobs1_vs_jobs4(self):
        grid = [
            ExperimentJob(benchmark, target=Target.LATENCY,
                          sim=SimulationConfig())
            for benchmark in ("gap", "gcc")
        ]
        clear_baseline_cache()
        sequential = run_experiments(grid, n_jobs=1)
        clear_baseline_cache()
        parallel = run_experiments(grid, n_jobs=4)
        for seq, par in zip(sequential, parallel):
            assert (
                seq.baseline.stats.stalls.as_dict()
                == par.baseline.stats.stalls.as_dict()
            )
            assert (
                seq.optimized.stats.stalls.as_dict()
                == par.optimized.stats.stalls.as_dict()
            )
            assert (
                seq.optimized.stats.breakdown.as_dict()
                == par.optimized.stats.breakdown.as_dict()
            )


class TestZeroCycleGuards:
    def test_stall_fractions_zero_run(self):
        empty = StallBreakdown()
        assert empty.total == 0
        fractions = empty.fractions()
        assert set(fractions) == set(STALL_CATEGORIES)
        assert all(v == 0.0 for v in fractions.values())

    def test_latency_fractions_zero_run(self):
        fractions = LatencyBreakdown().fractions()
        assert all(v == 0.0 for v in fractions.values())
        assert sum(fractions.values()) == 0.0

    def test_verify_raises_on_violation(self):
        bad = StallBreakdown(retiring=5)
        with pytest.raises(ValueError, match="slot invariant"):
            bad.verify(width=6, cycles=100)

    def test_verify_passes_on_exact_total(self):
        good = StallBreakdown(retiring=8, load_miss=4)
        good.verify(width=6, cycles=2)
