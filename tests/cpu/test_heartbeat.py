"""Simulator progress heartbeats: tap-driven emission, ETA semantics
(``eta_s`` is null until instructions actually retire), and the
``--quiet`` suppression gate."""

import pytest

from repro import obs
from repro.cpu import batch, pipeline
from repro.cpu.pipeline import simulate
from repro.frontend import interpret
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg


def _alu_loop(n=200):
    b = ProgramBuilder("alu")
    b.set_reg(Reg.r2, n)
    b.li(Reg.r1, 0)
    b.label("top")
    b.add(Reg.r3, Reg.r3, Reg.r4)
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return interpret(b.build())


def _set_heartbeat_cycles(monkeypatch, value):
    # ``batch`` imports the constant by value at module load, so both
    # copies must be patched for the interval to take effect regardless
    # of which cycle engine the dispatcher picks.
    monkeypatch.setattr(pipeline, "HEARTBEAT_CYCLES", value)
    monkeypatch.setattr(batch, "HEARTBEAT_CYCLES", value)


@pytest.fixture
def beats(monkeypatch):
    """Collect sim_heartbeat events at a tiny cycle interval."""
    _set_heartbeat_cycles(monkeypatch, 25)
    collected = []

    def tap(event):
        if event.get("event") == "sim_heartbeat":
            collected.append(event)

    obs.add_tap(tap)
    yield collected
    obs.remove_tap(tap)


def test_tap_triggers_heartbeats_with_progress_fields(beats):
    simulate(_alu_loop())
    assert beats, "no heartbeats despite an active tap"
    for event in beats:
        assert 0.0 <= event["progress_pct"] <= 100.0
        assert event["eta_s"] is None or event["eta_s"] >= 0.0
    cycles = [e["cycles"] for e in beats]
    assert cycles == sorted(cycles)
    pcts = [e["progress_pct"] for e in beats]
    assert pcts == sorted(pcts)


def test_eta_is_null_until_instructions_retire(monkeypatch, beats):
    # Fire the first heartbeat before anything can commit (the frontend
    # pipe alone is several cycles deep): zero retired in the interval
    # must report eta_s null, never a division blow-up or a bogus 0.
    _set_heartbeat_cycles(monkeypatch, 1)
    simulate(_alu_loop())
    assert beats[0]["committed"] == 0
    assert beats[0]["eta_s"] is None
    # Once instructions retire the projection becomes a real number.
    assert any(
        e["eta_s"] is not None for e in beats if e["committed"] > 0
    )


def test_quiet_suppresses_heartbeats_even_with_taps(beats):
    obs.set_quiet(True)
    try:
        simulate(_alu_loop())
    finally:
        obs.set_quiet(False)
    assert beats == []
    simulate(_alu_loop())  # gate re-opens once quiet is lifted
    assert beats


def test_no_taps_no_debug_means_no_heartbeats(monkeypatch):
    _set_heartbeat_cycles(monkeypatch, 25)
    # With no taps and the level below debug the heartbeat branch is
    # dead: log_event must never even be called with a heartbeat.
    assert not obs.has_taps()
    assert not obs.is_enabled("debug")
    seen = []
    real = obs.log_event

    def spy(event, **fields):
        seen.append(event)
        real(event, **fields)

    monkeypatch.setattr(pipeline.obs, "log_event", spy)
    simulate(_alu_loop())
    assert "sim_heartbeat" not in seen
