"""Golden bit-identity: every cycle-engine backend vs the reference.

The batched and numpy engines (:mod:`repro.cpu.batch`) and the compiled
native kernel (:mod:`repro.cpu.kerneldriver`) must be indistinguishable
from the retained :class:`repro.cpu.pipeline.Pipeline` oracle everywhere
downstream: full structural :class:`SimStats` equality (cycle/stall
breakdowns, activity counters, missed-load sets, per-PC miss dicts) for
baseline and p-thread-augmented runs over every seed benchmark, and
identical figure rows through the whole harness.  ``native`` joins the
matrix whenever the compiled artifact loads (a C compiler on PATH, or a
cached build); environments without a toolchain skip just that column.
"""

import pytest

from repro.config import EnergyConfig, MachineConfig
from repro.cpu import engine
from repro.cpu.pipeline import simulate
from repro.cpu.pthreads import (
    PInstClass,
    PInstSpec,
    PThreadProgram,
    SpawnSpec,
)
from repro.errors import PipelineDeadlockError
from repro.ddmt.augment import expand_pthreads
from repro.energy.wattch import EnergyModel
from repro.frontend import tracestore
from repro.frontend.interpreter import interpret
from repro.harness import figures, simcache
from repro.harness.experiment import clear_baseline_cache
from repro.pthsel.framework import BaselineEstimates, select_pthreads
from repro.pthsel.targets import Target
from repro.workloads import benchmark_names
from repro.workloads.registry import get_program

HAVE_NUMPY = engine._np is not None

try:
    from repro.cpu import nativebuild

    HAVE_NATIVE = nativebuild.native_available()
except Exception:  # pragma: no cover - probe must never break the suite
    HAVE_NATIVE = False

#: Bit-identity does not depend on the instruction budget; a reduced one
#: keeps the 9-benchmark x 4-backend matrix affordable.  The seed
#: programs halt past this budget, so truncated traces are exercised.
BUDGET = 60_000

BACKENDS = (
    ["reference", "batched"]
    + (["numpy"] if HAVE_NUMPY else [])
    + (["native"] if HAVE_NATIVE else [])
)


@pytest.fixture(autouse=True)
def _clean_state():
    tracestore.clear()
    clear_baseline_cache()
    yield
    engine.set_sim_backend(None)
    tracestore.clear()
    clear_baseline_cache()


def _backend_stats(trace, machine, pthreads=None):
    """Baseline + optionally augmented SimStats under each backend."""
    out = {}
    for backend in BACKENDS:
        engine.set_sim_backend(backend)
        out[backend] = simulate(trace, machine, pthreads)
    return out


@pytest.mark.parametrize("bench_name", benchmark_names())
def test_backends_bit_identical(bench_name):
    """Full SimStats equality, baseline and augmented, per benchmark."""
    program = get_program(bench_name, "train")
    trace = interpret(program, max_instructions=BUDGET, require_halt=False)
    machine = MachineConfig()
    energy = EnergyConfig()

    by_backend = _backend_stats(trace, machine)
    reference = by_backend["reference"]
    for backend in BACKENDS[1:]:
        assert by_backend[backend] == reference, (
            f"{bench_name}/{backend}: baseline SimStats diverge from the "
            "reference engine"
        )

    # P-thread selection must agree too (it consumes only the trace, but
    # a backend bug upstream would surface here), and the augmented run
    # exercises spawns, p-instruction scheduling, and coverage counters.
    measured = EnergyModel(energy, machine).evaluate(reference.activity)
    estimates = BaselineEstimates(
        ipc=reference.ipc,
        l0=float(reference.cycles),
        e0=measured.total_joules,
    )
    selection = select_pthreads(
        trace, estimates, target=Target.LATENCY, machine=machine,
        energy=energy,
    )
    if not selection.pthreads:
        return
    augmented = expand_pthreads(
        program,
        selection.pthreads,
        max_instructions=BUDGET,
        reference_trace=trace,
        require_halt=False,
    )
    opt_by_backend = {}
    for backend in BACKENDS:
        engine.set_sim_backend(backend)
        opt_by_backend[backend] = simulate(
            augmented.trace, machine, augmented.pthreads
        )
    opt_reference = opt_by_backend["reference"]
    assert opt_reference.spawns_started >= 0
    for backend in BACKENDS[1:]:
        assert opt_by_backend[backend] == opt_reference, (
            f"{bench_name}/{backend}: augmented SimStats diverge from the "
            "reference engine"
        )


def _strip_timings(row):
    # Phase walls differ run to run and src_baseline legitimately
    # differs between engines (the batch prewarm is gated off under the
    # reference engine); everything numeric must match exactly.
    return {
        k: v
        for k, v in row.items()
        if not k.startswith("t_") and not k.startswith("src_")
    }


def _tiny_grid():
    return [
        _strip_timings(row)
        for row in figures.figure5_memory_latency(
            benchmarks=("gcc",),
            latencies=(100, 200),
            targets=(Target.LATENCY,),
            jobs=1,
        )
    ]


def test_figure_rows_identical_across_backends():
    with simcache.disabled():
        engine.set_sim_backend("reference")
        reference_rows = _tiny_grid()
        for backend in BACKENDS[1:]:
            tracestore.clear()
            clear_baseline_cache()
            engine.set_sim_backend(backend)
            assert _tiny_grid() == reference_rows, (
                f"{backend}: figure rows diverge from the reference engine"
            )


# ---------------------------------------------------------------------------
# Edge paths: the corners a fast engine is most likely to get wrong.


from repro.isa.builder import ProgramBuilder  # noqa: E402
from repro.isa.registers import Reg  # noqa: E402


def _alu_program(n=20, chain=2):
    b = ProgramBuilder("alu")
    b.set_reg(Reg.r2, n)
    b.li(Reg.r1, 0)
    b.label("top")
    for _ in range(chain):
        b.add(Reg.r3, Reg.r3, Reg.r4)
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return b.build()


def test_zero_instruction_trace_all_backends():
    trace = interpret(_alu_program(), max_instructions=0, require_halt=False)
    assert len(trace) == 0
    by_backend = _backend_stats(trace, MachineConfig())
    reference = by_backend["reference"]
    assert reference.committed == 0
    for backend in BACKENDS[1:]:
        assert by_backend[backend] == reference


def test_spawn_under_structural_pressure_all_backends():
    """Spawns arriving while the ROB/contexts/registers are saturated.

    A tiny machine forces every structural limit to bite: contexts run
    out (spawns dropped), the ROB fills mid p-thread, and the shared
    physical register file throttles renames.  All of it must account
    identically under every backend, down to spawn/drop counters.
    """
    trace = interpret(_alu_program(n=60, chain=4), require_halt=False)
    # The renamer reserves 32 physical registers for main architectural
    # state, so 48 leaves a pool of 16 -- larger than the 8-entry ROB so
    # the ROB limit bites first, small enough that p-thread renames
    # contend with the main thread for it.
    machine = MachineConfig(
        rob_entries=8,
        physical_registers=48,
        thread_contexts=3,
    )
    body = tuple(
        PInstSpec(klass=PInstClass.LOAD, addr=0x90000 + i * 4096)
        for i in range(6)
    )
    spawns = [
        SpawnSpec(trigger_seq=2 + 5 * i, static_id=i % 4, insts=body)
        for i in range(8)
    ]
    pthreads = PThreadProgram.from_spawns(spawns)
    by_backend = {}
    for backend in BACKENDS:
        engine.set_sim_backend(backend)
        by_backend[backend] = simulate(trace, machine, pthreads)
    reference = by_backend["reference"]
    assert reference.spawns_started > 0
    assert reference.spawns_dropped_no_context > 0
    for backend in BACKENDS[1:]:
        assert by_backend[backend] == reference


def test_deadlock_detected_identically():
    """A self-dependent instruction must deadlock every backend alike.

    No well-formed trace can deadlock (in-order dispatch means producers
    always precede dependents), so the trace is doctored white-box: one
    instruction made its own producer.  It dispatches, waits on itself
    forever, and once the frontend drains both engines must conclude "no
    future event" and raise through the shared ``_deadlock_error``.
    """
    program = _alu_program(n=1, chain=1)

    def _doctored():
        # Rebuilt per backend: the pipeline view is memoized on the
        # trace, so the mutation must precede the first simulate.
        trace = interpret(program, require_halt=False)
        trace.columns.src1[1] = 1
        return trace

    messages = {}
    for backend in BACKENDS:
        engine.set_sim_backend(backend)
        with pytest.raises(PipelineDeadlockError) as excinfo:
            simulate(_doctored(), MachineConfig())
        messages[backend] = str(excinfo.value)
    for backend in BACKENDS[1:]:
        assert messages[backend] == messages["reference"]
