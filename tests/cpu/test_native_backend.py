"""The ``native`` cycle engine: selection, errors, and batch identity.

Covers the backend-availability contract (requesting an unavailable
engine raises :class:`ConfigError` naming the backend and the remedy;
``available_backends()`` is the selectable set) and, where the compiled
artifact loads, lock-step ``simulate_batch``/``batchplan`` equivalence
with the ``batched`` engine.  Toolchain-less environments run the error
paths and skip the compiled ones -- never fail.
"""

import pytest

from repro.config import MachineConfig, SimulationConfig
from repro.cpu import engine, nativebuild
from repro.cpu.batch import simulate_batch, simulate_fast
from repro.errors import ConfigError
from repro.frontend import tracestore
from repro.harness import batchplan, experiment, simcache
from repro.harness.experiment import clear_baseline_cache, run_experiment
from repro.pthsel.targets import Target
from repro.workloads.registry import get_program

HAVE_NATIVE = nativebuild.native_available()

SIM = SimulationConfig(max_instructions=150_000)


@pytest.fixture(autouse=True)
def _clean_state():
    tracestore.clear()
    clear_baseline_cache()
    yield
    engine.set_sim_backend(None)
    nativebuild.reset_probe()
    tracestore.clear()
    clear_baseline_cache()


@pytest.fixture()
def _no_native(monkeypatch):
    """Environment where the compiled kernel cannot load."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    nativebuild.reset_probe()
    yield
    nativebuild.reset_probe()


class TestEngineErrors:
    def test_unknown_backend_lists_legal_names(self):
        with pytest.raises(ConfigError) as err:
            engine.set_sim_backend("turbo")
        assert "native" in str(err.value)
        assert "batched" in str(err.value)

    def test_native_unavailable_names_backend_and_remedy(self, _no_native):
        with pytest.raises(ConfigError) as err:
            engine.set_sim_backend("native")
        message = str(err.value)
        assert "native" in message
        assert "python -m repro.cpu.nativebuild" in message

    def test_env_resolution_raises_too(self, monkeypatch, _no_native):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "native")
        engine.set_sim_backend(None)
        with pytest.raises(ConfigError) as err:
            engine.backend()
        assert "REPRO_SIM_BACKEND=native" in str(err.value)

    def test_numpy_unavailable_names_remedy(self, monkeypatch):
        monkeypatch.setattr(engine, "_np", None)
        with pytest.raises(ConfigError) as err:
            engine.set_sim_backend("numpy")
        assert "install numpy" in str(err.value)

    def test_available_backends_excludes_unloadable(self, _no_native):
        names = engine.available_backends()
        assert "native" not in names
        assert "reference" in names and "batched" in names

    def test_cli_reports_unavailable_backend(self, _no_native, capsys):
        from repro.cli import main

        code = main(["list", "--sim-backend", "native"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "python -m repro.cpu.nativebuild" in captured.err

    def test_native_error_reports_reason(self, _no_native):
        assert not nativebuild.native_available()
        assert "REPRO_NATIVE=0" in nativebuild.native_error()


@pytest.mark.skipif(not HAVE_NATIVE, reason="compiled kernel unavailable")
class TestNativeAvailable:
    def test_probe_is_memoized(self):
        first = nativebuild.load()
        assert first is not None
        assert nativebuild.load() is first
        assert nativebuild.native_error() is None

    def test_available_backends_includes_native(self):
        assert "native" in engine.available_backends()

    def test_simulate_batch_matches_per_config_batched(self):
        program = get_program("mcf", "train")
        trace, _ = tracestore.get_trace(program, SIM.max_instructions)
        configs = [
            MachineConfig(memory_latency=lat) for lat in (100, 200, 500)
        ]
        expected = [
            simulate_fast(trace, config) for config in configs
        ]
        got = simulate_batch(trace, configs, native=True)
        assert got == expected


@pytest.mark.skipif(not HAVE_NATIVE, reason="compiled kernel unavailable")
class TestNativePrewarm:
    class _Job:
        def __init__(self, benchmark, machine):
            self._keys = [(benchmark, "train", machine, SIM)]

        def baseline_keys(self):
            return list(self._keys)

    def _jobs(self):
        return [
            self._Job("mcf", MachineConfig(memory_latency=lat))
            for lat in (100, 200)
        ]

    def test_prewarm_adoption_identical_to_batched(self):
        # The prewarmed baselines under native must be the exact stats
        # the batched engine adopts, and the per-cell experiment must
        # still be served from the adopted baseline.
        engine.set_sim_backend("batched")
        with simcache.disabled():
            batchplan.prewarm(self._jobs())
            batched_rows = [
                run_experiment(
                    "mcf",
                    target=Target.LATENCY,
                    machine=MachineConfig(memory_latency=lat),
                    sim=SIM,
                )
                for lat in (100, 200)
            ]
        tracestore.clear()
        clear_baseline_cache()
        engine.set_sim_backend("native")
        with simcache.disabled():
            stats = batchplan.prewarm(self._jobs())
            assert stats["simulated"] == 2
            for job in self._jobs():
                for key in job.baseline_keys():
                    assert experiment.baseline_cached(*key)
            native_rows = [
                run_experiment(
                    "mcf",
                    target=Target.LATENCY,
                    machine=MachineConfig(memory_latency=lat),
                    sim=SIM,
                )
                for lat in (100, 200)
            ]
        for batched_row, native_row in zip(batched_rows, native_rows):
            assert native_row.provenance["baseline"] == "batch"
            assert native_row.baseline == batched_row.baseline
            assert native_row.optimized == batched_row.optimized
            assert native_row.metrics == batched_row.metrics
