"""Tests for the cycle-level pipeline on hand-built programs."""

import pytest

from repro.config import MachineConfig
from repro.cpu.pipeline import Pipeline, simulate
from repro.cpu.pthreads import (
    PInstClass,
    PInstSpec,
    PThreadProgram,
    SpawnSpec,
)
from repro.errors import ExecutionError
from repro.frontend import interpret
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg


def _alu_loop(n=100, chain=4):
    b = ProgramBuilder("alu")
    b.set_reg(Reg.r2, n)
    b.li(Reg.r1, 0)
    b.label("top")
    for _ in range(chain):
        b.add(Reg.r3, Reg.r3, Reg.r4)
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return interpret(b.build())


def _missing_load_loop(n=50, stride=4096):
    """A loop whose load misses every iteration (huge stride)."""
    b = ProgramBuilder("miss")
    b.data.alloc("big", (n + 1) * stride // 8)
    base = b.data.base("big")
    b.set_reg(Reg.r2, n)
    b.set_reg(Reg.r5, stride)
    b.li(Reg.r1, 0)
    b.li(Reg.r6, base)
    b.label("top")
    b.load(Reg.r3, Reg.r6)
    b.add(Reg.r6, Reg.r6, Reg.r5)
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return interpret(b.build())


class TestBasicExecution:
    def test_all_instructions_commit(self):
        trace = _alu_loop()
        stats = simulate(trace)
        assert stats.committed == len(trace)

    def test_ipc_bounded_by_width(self):
        stats = simulate(_alu_loop())
        assert 0 < stats.ipc <= MachineConfig().width

    def test_serial_chain_limits_ipc(self):
        fast = simulate(_alu_loop(chain=1))
        slow_trace = _alu_loop(chain=12)
        slow = simulate(slow_trace)
        # A longer serial ALU chain must not raise IPC.
        assert slow.cycles > fast.cycles

    def test_pipeline_runs_once_only(self):
        trace = _alu_loop(10)
        p = Pipeline(trace)
        p.run()
        with pytest.raises(ExecutionError, match="only run once"):
            p.run()

    def test_breakdown_covers_all_cycles(self):
        stats = simulate(_alu_loop())
        assert stats.breakdown.total == stats.cycles

    def test_deterministic(self):
        trace = _missing_load_loop()
        a = simulate(trace, warm=False)
        b = simulate(trace, warm=False)
        assert a.cycles == b.cycles
        assert a.demand_l2_misses == b.demand_l2_misses


class TestMemoryBehavior:
    def test_missing_loads_dominate_breakdown(self):
        stats = simulate(_missing_load_loop(), warm=False)
        assert stats.demand_l2_misses > 20
        fractions = stats.breakdown.fractions()
        assert fractions["mem"] > 0.5

    def test_misses_attributed_to_static_pc(self):
        trace = _missing_load_loop()
        stats = simulate(trace, warm=False)
        load_pc = next(d.pc for d in trace if d.is_load)
        assert stats.l2_misses_by_pc.get(load_pc, 0) > 20

    def test_warm_false_sees_cold_misses(self):
        b = ProgramBuilder("cold")
        b.data.alloc("t", 64)
        b.set_reg(Reg.r2, 32)
        b.li(Reg.r1, 0)
        b.li(Reg.r6, b.data.base("t"))
        b.label("top")
        b.load(Reg.r3, Reg.r6)
        b.addi(Reg.r1, Reg.r1, 1)
        b.blt(Reg.r1, Reg.r2, "top")
        b.halt()
        trace = interpret(b.build())
        cold = simulate(trace, warm=False)
        warmed = simulate(trace, warm=True)
        assert cold.demand_l2_misses >= 1
        assert warmed.demand_l2_misses == 0


class TestBranchBehavior:
    def test_predictable_loop_branch_low_mispredicts(self):
        stats = simulate(_alu_loop(n=400))
        assert stats.branches == 400
        assert stats.misprediction_rate < 0.05

    def test_random_branch_mispredicts_and_slows(self):
        import random

        rng = random.Random(9)
        b = ProgramBuilder("rnd")
        values = [rng.randint(0, 1) for _ in range(256)]
        b.data.alloc("bits", 256)
        b.data.fill("bits", values)
        b.set_reg(Reg.r2, 256 * 8)
        b.li(Reg.r1, 0)
        b.label("top")
        b.load(Reg.r3, Reg.r1, base_symbol="bits")
        b.beq(Reg.r3, 0, "skip", rhs_is_imm=True)
        b.nop()
        b.label("skip")
        b.addi(Reg.r1, Reg.r1, 8)
        b.blt(Reg.r1, Reg.r2, "top")
        b.halt()
        trace = interpret(b.build())
        stats = simulate(trace)
        assert stats.misprediction_rate > 0.1
        assert stats.breakdown.fetch > 0


class TestPThreadExecution:
    def _spawned_run(self, trace, addr, trigger_seq):
        spawn = SpawnSpec(
            trigger_seq=trigger_seq,
            static_id=0,
            insts=(
                PInstSpec(klass=PInstClass.ALU),
                PInstSpec(klass=PInstClass.LOAD, addr=addr, body_deps=(0,),
                          is_target=True),
            ),
        )
        return simulate(trace, pthreads=PThreadProgram.from_spawns([spawn]))

    def test_pthread_counts_and_energy_attribution(self):
        trace = _alu_loop(50)
        stats = self._spawned_run(trace, addr=0x40000, trigger_seq=5)
        assert stats.spawns_started == 1
        assert stats.pinsts_executed == 2
        assert stats.activity.dispatched_pth == 2
        assert stats.activity.fetch_blocks_pth >= 1

    def test_pthread_prefetch_covers_later_miss(self):
        trace = _missing_load_loop(n=40)
        # Prefetch iteration 30's address early (trigger at iteration 2).
        load_seqs = [d.seq for d in trace if d.is_load]
        target = trace[load_seqs[30]]
        spawn = SpawnSpec(
            trigger_seq=load_seqs[2],
            static_id=0,
            insts=(PInstSpec(klass=PInstClass.LOAD, addr=target.addr,
                             is_target=True),),
        )
        stats = simulate(trace, pthreads=PThreadProgram.from_spawns([spawn]),
                         warm=False)
        assert stats.covered_misses_full + stats.covered_misses_partial >= 1

    def test_spawns_dropped_when_contexts_exhausted(self):
        trace = _alu_loop(60)
        # Many long-lived spawns at the same trigger exhaust 7 contexts.
        body = tuple(
            PInstSpec(klass=PInstClass.LOAD, addr=0x80000 + i * 4096)
            for i in range(8)
        )
        spawns = [
            SpawnSpec(trigger_seq=3, static_id=i, insts=body)
            for i in range(12)
        ]
        stats = simulate(trace, pthreads=PThreadProgram.from_spawns(spawns))
        assert stats.spawns_dropped_no_context > 0
        assert stats.spawns_started <= MachineConfig().thread_contexts - 1

    def test_pthreads_slow_fetch_bound_program(self):
        """P-threads steal fetch slots: with a fetch-bound main thread,
        adding useless p-threads must not speed it up."""
        trace = _alu_loop(n=300, chain=1)
        base = simulate(trace)
        body = tuple(PInstSpec(klass=PInstClass.ALU) for _ in range(12))
        addi_seqs = [d.seq for d in trace if d.op.value == "addi"]
        spawns = [
            SpawnSpec(trigger_seq=s, static_id=0, insts=body)
            for s in addi_seqs[::2]
        ]
        stats = simulate(trace, pthreads=PThreadProgram.from_spawns(spawns))
        assert stats.cycles >= base.cycles


class TestFaultsAndDeadlockDiagnostics:
    def test_pipeline_step_fault_aborts_simulation(self):
        from repro import faults
        from repro.errors import FaultInjectedError

        trace = _alu_loop(20)
        with faults.active(["pipeline.step:1.0"]):
            with pytest.raises(FaultInjectedError) as exc_info:
                simulate(trace)
        assert exc_info.value.site == "pipeline.step"

    def test_pipeline_step_inactive_plan_is_harmless(self):
        from repro import faults

        trace = _alu_loop(20)
        baseline = simulate(trace)
        # An armed-but-never-firing plan must not perturb timing.
        with faults.active(["pipeline.step:0.0"]):
            assert simulate(trace).cycles == baseline.cycles

    def test_deadlock_error_carries_machine_state(self):
        from collections import deque

        from repro.cpu.pipeline import _deadlock_error
        from repro.errors import PipelineDeadlockError

        err = _deadlock_error(
            now=123,
            committed=7,
            n_main=50,
            rob=deque([0]),
            pc_arr=[0x400],
            kind_arr=[2],
            completion=[125],
            fetch_active=[],
        )
        assert isinstance(err, PipelineDeadlockError)
        assert isinstance(err, ExecutionError)  # deterministic: no retry
        assert err.context["cycle"] == 123
        assert err.context["committed"] == 7
        assert err.context["total"] == 50
        assert err.context["rob_head"] == {
            "seq": 0, "pc": 0x400, "kind": 2, "done_at": 125,
        }
        assert err.context["fetch_state"] == []

    def test_deadlock_error_reports_pthread_fetch_contexts(self):
        from collections import deque

        from repro.cpu.pipeline import _Context, _deadlock_error

        spawn = SpawnSpec(
            static_id=3,
            trigger_seq=11,
            insts=(PInstSpec(PInstClass.ALU),),
        )
        ctx = _Context(spawn, uid_base=100, now=40)
        err = _deadlock_error(
            now=60,
            committed=0,
            n_main=10,
            rob=deque(),
            pc_arr=[],
            kind_arr=[],
            completion=[],
            fetch_active=[ctx],
        )
        assert err.context["rob_head"] is None
        (state,) = err.context["fetch_state"]
        assert state["static_id"] == 3
        assert state["trigger_seq"] == 11
        assert state["fetched_all"] is False
