"""End-to-end selection tests (framework + selector + targets)."""

import pytest

from repro.config import SelectionConfig
from repro.cpu.pipeline import simulate
from repro.energy import EnergyModel
from repro.frontend import interpret
from repro.pthsel import Target, select_pthreads
from repro.pthsel.framework import BaselineEstimates
from repro.workloads import get_program


@pytest.fixture(scope="module")
def gap_setup():
    trace = interpret(get_program("gap"), max_instructions=2_000_000)
    stats = simulate(trace)
    e0 = EnergyModel().evaluate(stats.activity).total_joules
    return trace, BaselineEstimates(
        ipc=stats.ipc, l0=float(stats.cycles), e0=e0
    )


def test_latency_target_selects_pthreads(gap_setup):
    trace, base = gap_setup
    result = select_pthreads(trace, base, target=Target.LATENCY)
    assert result.n_pthreads >= 1
    assert result.predicted["ladv_agg"] > 0
    for p in result.pthreads:
        assert p.size >= 1
        assert p.body[-1].op.is_load  # the target load ends the body


def test_targets_are_ordered_by_aggressiveness(gap_setup):
    """E-p-threads never execute more p-instruction volume than L."""
    trace, base = gap_setup

    def volume(target):
        r = select_pthreads(trace, base, target=target)
        return sum(
            p.size * p.predicted.get("dc_trig", 0.0) for p in r.pthreads
        )

    v_energy, v_ed, v_original = (
        volume(Target.ENERGY),
        volume(Target.ED),
        volume(Target.ORIGINAL),
    )
    assert v_energy <= v_ed + 1e-9
    assert v_ed <= v_original + 1e-9


def test_original_never_less_aggressive_than_latency(gap_setup):
    trace, base = gap_setup
    o = select_pthreads(trace, base, target=Target.ORIGINAL)
    l = select_pthreads(trace, base, target=Target.LATENCY)
    assert o.n_pthreads >= l.n_pthreads


def test_ed2_close_to_latency(gap_setup):
    """The paper: P2-p-threads are very similar to L-p-threads."""
    trace, base = gap_setup
    l = select_pthreads(trace, base, target=Target.LATENCY)
    p2 = select_pthreads(trace, base, target=Target.ED2)
    l_triggers = {(p.trigger_pc, p.size) for p in l.pthreads}
    p2_triggers = {(p.trigger_pc, p.size) for p in p2.pthreads}
    assert l_triggers & p2_triggers


def test_zero_idle_factor_kills_energy_target(gap_setup):
    """Figure 5 top: with no idle energy to recover, no E-p-threads
    exist (all EADVagg negative)."""
    from repro.config import EnergyConfig

    trace, base = gap_setup
    result = select_pthreads(
        trace,
        base,
        target=Target.ENERGY,
        energy=EnergyConfig().with_idle_factor(0.0),
    )
    assert result.n_pthreads == 0


def test_no_problem_loads_yields_empty_selection(gap_setup):
    trace, base = gap_setup
    config = SelectionConfig(min_miss_share=1.1)  # impossible threshold
    result = select_pthreads(trace, base, selection=config)
    assert result.n_pthreads == 0
    assert result.problem_pcs == []


def test_selection_is_deterministic(gap_setup):
    trace, base = gap_setup
    a = select_pthreads(trace, base, target=Target.ED)
    b = select_pthreads(trace, base, target=Target.ED)
    assert [p.describe() for p in a.pthreads] == [
        p.describe() for p in b.pthreads
    ]


def test_describe_renders(gap_setup):
    trace, base = gap_setup
    result = select_pthreads(trace, base)
    text = result.describe()
    assert "p-threads" in text
