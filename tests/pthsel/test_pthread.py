"""Tests for p-thread bodies and the induction-merge optimization."""

from repro.isa.instruction import StaticInst
from repro.isa.opcodes import Op
from repro.pthsel.pthread import StaticPThread, optimize_body


def _addi(pc, rd, rs1, imm):
    return StaticInst(pc, Op.ADDI, rd=rd, rs1=rs1, imm=imm)


def _load(pc, rd, rs1):
    return StaticInst(pc, Op.LD, rd=rd, rs1=rs1, imm=0)


def test_consecutive_self_addis_merge():
    body = [_addi(5, 1, 1, 8), _addi(5, 1, 1, 8), _addi(5, 1, 1, 8),
            _load(7, 2, 1)]
    out = optimize_body(body)
    assert len(out) == 2
    assert out[0].op is Op.ADDI and out[0].imm == 24  # i += 3*8
    assert out[1].op is Op.LD


def test_non_adjacent_addis_not_merged():
    body = [_addi(5, 1, 1, 8), _load(7, 2, 1), _addi(5, 1, 1, 8)]
    out = optimize_body(body)
    assert len(out) == 3


def test_different_registers_not_merged():
    body = [_addi(5, 1, 1, 8), _addi(6, 2, 2, 8)]
    assert len(optimize_body(body)) == 2


def test_non_self_increment_not_merged():
    body = [_addi(5, 1, 2, 8), _addi(5, 1, 2, 8)]  # rd != rs1
    assert len(optimize_body(body)) == 2


def test_empty_body():
    assert optimize_body([]) == []


def test_static_pthread_counts():
    p = StaticPThread(
        pthread_id=0,
        trigger_pc=3,
        body=(_addi(5, 1, 1, 16), _load(7, 2, 1)),
        target_pcs=(7,),
    )
    assert p.size == 2
    assert p.n_loads == 1
    assert p.n_alu == 1
    assert "trigger=pc3" in p.describe()
