"""Unit tests for the PTHSEL latency/energy/composite equations."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import EnergyConfig, MachineConfig
from repro.critpath.classify import LoadClassification
from repro.critpath.loadcost import FlatLoadCost, LoadCostFunction
from repro.energy.wattch import EnergyModel
from repro.errors import ConfigError
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import Op
from repro.pthsel.composite import CompositeParams, cadv_agg
from repro.pthsel.energy_model import EnergyParams, PthselEnergyModel
from repro.pthsel.latency_model import LatencyModel, LatencyParams


def _alu(pc, rd=1, rs1=1):
    return StaticInst(pc, Op.ADDI, rd=rd, rs1=rs1, imm=1)


def _load(pc, rd=2, rs1=1):
    return StaticInst(pc, Op.LD, rd=rd, rs1=rs1, imm=0)


@pytest.fixture
def latency_model():
    return LatencyModel(
        LatencyParams(bw_seq_proc=6.0, memory_latency=200.0, bw_seq_mt=0.5),
        MachineConfig(),
        LoadClassification(),
    )


@pytest.fixture
def energy_model():
    constants = EnergyModel().pthsel_constants()
    return PthselEnergyModel(
        EnergyParams.from_constants(constants), 6.0, LoadClassification()
    )


class TestLatencyModel:
    def test_loh_equation_l4(self, latency_model):
        # LOH = (SIZE/BW) * (BWmt/BW) = (12/6)*(0.5/6)
        assert latency_model.loh(12) == pytest.approx(2 * 0.5 / 6)

    def test_loh_discounted_by_main_utilization(self):
        busy = LatencyModel(
            LatencyParams(6.0, 200.0, 3.0), MachineConfig(),
            LoadClassification(),
        )
        idle = LatencyModel(
            LatencyParams(6.0, 200.0, 0.1), MachineConfig(),
            LoadClassification(),
        )
        assert busy.loh(12) > idle.loh(12)

    def test_lred_grows_with_distance(self, latency_model):
        body = [_alu(0), _load(1)]
        near = latency_model.lred(body, target_pc=1, avg_distance=10)
        far = latency_model.lred(body, target_pc=1, avg_distance=100)
        assert far > near

    def test_lred_never_negative(self, latency_model):
        body = [_alu(0)] * 30 + [_load(1)]
        assert latency_model.lred(body, 1, avg_distance=1) == 0.0

    def test_load_trigger_delays_pthread(self, latency_model):
        cls = LoadClassification()
        cls.service_counts[9] = [0, 0, 100]  # trigger always waits on memory
        model = LatencyModel(
            LatencyParams(6.0, 200.0, 0.5), MachineConfig(), cls
        )
        body = [_load(1)]
        trigger_load = _load(9)
        trigger_alu = _alu(9)
        with_load = model.lred(body, 1, 80, trigger=trigger_load)
        with_alu = model.lred(body, 1, 80, trigger=trigger_alu)
        assert with_load < with_alu

    def test_ladv_agg_is_lred_minus_loh(self, latency_model):
        body = [_alu(0), _load(1)]
        m = latency_model.ladv_agg(
            body, 1, avg_distance=60, dc_trig=100, dc_ptcm=50,
            cost_function=FlatLoadCost(),
        )
        assert m["ladv_agg"] == pytest.approx(
            m["lred_agg"] - m["loh_agg"]
        )
        assert m["lred_agg"] == pytest.approx(50 * m["gain"])
        assert m["loh_agg"] == pytest.approx(100 * m["loh"])

    def test_flat_gain_caps_at_memory_latency(self, latency_model):
        body = [_load(1)]
        m = latency_model.ladv_agg(
            body, 1, avg_distance=100_000, dc_trig=1, dc_ptcm=1,
            cost_function=FlatLoadCost(),
        )
        assert m["gain"] == 200.0

    def test_criticality_gain_uses_cost_function(self, latency_model):
        fn = LoadCostFunction(pc=1, miss_latency=200.0,
                              samples=(5.0, 10.0, 15.0, 20.0))
        body = [_load(1)]
        m = latency_model.ladv_agg(
            body, 1, avg_distance=100_000, dc_trig=1, dc_ptcm=1,
            cost_function=fn,
        )
        assert m["gain"] == 20.0  # the function's saturation, not 200


class TestEnergyModel:
    def test_fetch_energy_uses_block_ceiling(self, energy_model):
        one_block = energy_model.fetch_energy(6)
        two_blocks = energy_model.fetch_energy(7)
        assert two_blocks == pytest.approx(2 * one_block)

    def test_execute_energy_separates_loads(self, energy_model):
        alu_body = [_alu(i) for i in range(4)]
        load_body = [_alu(0), _alu(1), _alu(2), _load(3)]
        assert energy_model.execute_energy(load_body) > 0
        # A load costs more than an ALU op (e_xload > e_xalu).
        assert (
            energy_model.execute_energy(load_body)
            > energy_model.execute_energy(alu_body)
        )

    def test_l2_energy_proportional_to_miss_rate(self):
        constants = EnergyModel().pthsel_constants()
        cls = LoadClassification()
        cls.load_counts[3] = 100
        cls.l1_miss_counts[3] = 50
        model = PthselEnergyModel(
            EnergyParams.from_constants(constants), 6.0, cls
        )
        body = [_load(3)]
        assert model.l2_energy(body) == pytest.approx(
            0.5 * model.params.e_l2
        )

    def test_eadv_agg_equation_e1(self, energy_model):
        body = [_alu(0), _load(1)]
        m = energy_model.eadv_agg(body, ladv_agg=1000.0, dc_trig=10)
        assert m["eadv_agg"] == pytest.approx(
            m["ered_agg"] - m["eoh_agg"]
        )
        assert m["ered_agg"] == pytest.approx(
            1000.0 * energy_model.params.e_idle
        )

    def test_zero_idle_factor_makes_all_eadv_negative(self):
        constants = EnergyModel(
            EnergyConfig().with_idle_factor(0.0)
        ).pthsel_constants()
        model = PthselEnergyModel(
            EnergyParams.from_constants(constants), 6.0, LoadClassification()
        )
        m = model.eadv_agg([_alu(0)], ladv_agg=1e9, dc_trig=1)
        assert m["eadv_agg"] < 0


class TestComposite:
    def test_w1_reduces_to_latency(self):
        p = CompositeParams(l0=1000.0, e0=1.0, w=1.0)
        assert cadv_agg(p, 100.0, -5.0) == pytest.approx(100.0)

    def test_w0_reduces_to_energy(self):
        p = CompositeParams(l0=1000.0, e0=1.0, w=0.0)
        assert cadv_agg(p, 100.0, 0.25) == pytest.approx(0.25)

    def test_ed_weight_balances(self):
        p = CompositeParams(l0=1000.0, e0=1.0, w=0.5)
        latency_heavy = cadv_agg(p, 100.0, -0.02)
        energy_heavy = cadv_agg(p, -20.0, 0.1)
        assert latency_heavy > 0
        assert isinstance(energy_heavy, float)

    def test_clamps_overlarge_advantages(self):
        p = CompositeParams(l0=100.0, e0=1.0, w=0.5)
        value = cadv_agg(p, 1e9, 1e9)
        assert math.isfinite(value)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            CompositeParams(l0=0.0, e0=1.0, w=0.5)
        with pytest.raises(ConfigError):
            CompositeParams(l0=1.0, e0=1.0, w=1.5)

    @given(
        ladv=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        eadv=st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False),
        w=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_advantage_signs_agree_with_cadv(self, ladv, eadv, w):
        """When both advantages clearly agree in sign, so does CADVagg
        (magnitudes large enough to avoid float cancellation against the
        baselines)."""
        p = CompositeParams(l0=1e6, e0=1.0, w=w)
        if ladv > 1e-3 and eadv > 1e-9:
            assert cadv_agg(p, ladv, eadv) > 0
        if ladv < -1e-3 and eadv < -1e-9:
            assert cadv_agg(p, ladv, eadv) < 0
