"""Tests for branch pre-execution (the Section 7 extension)."""

import pytest

from repro.cpu.pipeline import simulate
from repro.ddmt import expand_pthreads
from repro.energy import EnergyModel
from repro.frontend import interpret
from repro.pthsel.branches import (
    BranchMispredictCost,
    identify_problem_branches,
    select_branch_pthreads,
)
from repro.config import SelectionConfig
from repro.critpath.classify import classify_trace
from repro.pthsel.framework import BaselineEstimates
from repro.pthsel.targets import Target
from repro.workloads import get_program


@pytest.fixture(scope="module")
def bzip2_setup():
    program = get_program("bzip2")
    trace = interpret(program, max_instructions=2_000_000)
    stats = simulate(trace)
    e0 = EnergyModel().evaluate(stats.activity).total_joules
    return program, trace, BaselineEstimates(
        stats.ipc, float(stats.cycles), e0
    ), stats


def test_mispredict_cost_saturates():
    cost = BranchMispredictCost(penalty_cycles=30.0)
    assert cost.gain(10.0) == 10.0
    assert cost.gain(100.0) == 30.0
    assert cost.gain(-1.0) == 0.0


def test_problem_branch_identification(bzip2_setup):
    _, trace, _, _ = bzip2_setup
    cls = classify_trace(trace)
    pcs = identify_problem_branches(cls, SelectionConfig())
    data_branch = next(
        i.pc for i in trace.program if i.annotation == "data-branch"
    )
    assert data_branch in pcs


def test_branch_pthreads_selected_and_marked(bzip2_setup):
    _, trace, base, _ = bzip2_setup
    result = select_branch_pthreads(trace, base, target=Target.LATENCY)
    assert result.n_pthreads >= 1
    for pthread in result.pthreads:
        assert pthread.is_branch_pthread
        assert pthread.hint_offset >= 1
        assert pthread.body[-1].op.is_branch


def test_expanded_hints_target_future_instances(bzip2_setup):
    program, trace, base, _ = bzip2_setup
    result = select_branch_pthreads(trace, base, target=Target.LATENCY)
    augmented = expand_pthreads(program, result.pthreads,
                                reference_trace=trace)
    checked = 0
    correct = 0
    for spawns in augmented.pthreads.spawns_by_trigger.values():
        for spawn in spawns:
            final = spawn.insts[-1]
            if final.hint_branch_seq >= 0:
                assert final.hint_branch_seq > spawn.trigger_seq
                checked += 1
                if trace[final.hint_branch_seq].taken == final.hint_taken:
                    correct += 1
    assert checked > 100
    # Pre-computed outcomes overwhelmingly match the actual directions.
    assert correct / checked > 0.9


def test_hints_reduce_effective_mispredictions(bzip2_setup):
    program, trace, base, baseline_stats = bzip2_setup
    result = select_branch_pthreads(trace, base, target=Target.LATENCY)
    augmented = expand_pthreads(program, result.pthreads,
                                reference_trace=trace)
    stats = simulate(augmented.trace, pthreads=augmented.pthreads)
    assert stats.branch_hints_used > 0
    assert stats.mispredictions < baseline_stats.mispredictions


def test_zero_idle_does_not_kill_branch_energy_target(bzip2_setup):
    """Branch hints save at Etotal/c, not Eidle/c: unlike load p-threads,
    the energy target can stay alive at a 0% idle factor."""
    from repro.config import EnergyConfig

    _, trace, base, _ = bzip2_setup
    result = select_branch_pthreads(
        trace, base, target=Target.ENERGY,
        energy=EnergyConfig().with_idle_factor(0.0),
    )
    # Selection may or may not find profitable candidates, but the model
    # must not be categorically empty the way load-target selection is.
    assert result.predicted is not None
