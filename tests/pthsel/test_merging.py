"""Tests for the common-trigger merging post-pass."""

from repro.isa.instruction import StaticInst
from repro.isa.opcodes import Op
from repro.pthsel.merging import merge_pthreads, try_merge
from repro.pthsel.pthread import StaticPThread


def _addi(pc, rd, rs1, imm):
    return StaticInst(pc, Op.ADDI, rd=rd, rs1=rs1, imm=imm)


def _load(pc, rd, rs1):
    return StaticInst(pc, Op.LD, rd=rd, rs1=rs1, imm=0)


def _pthread(pid, trigger, body, targets, predicted=None):
    return StaticPThread(
        pthread_id=pid,
        trigger_pc=trigger,
        body=tuple(body),
        target_pcs=tuple(targets),
        predicted=predicted or {},
    )


def test_fork_merge_shares_prefix():
    """The Figure 1e case: same induction prefix, two field computations
    writing the same register but reading only the prefix."""
    prefix = [_addi(2, 1, 1, 16)]
    side_a = [_addi(4, 5, 1, 8), _load(9, 6, 5)]
    side_b = [_addi(6, 5, 1, 16), _load(9, 6, 5)]
    a = _pthread(0, 2, prefix + side_a, [9], {"ladv_agg": 10.0})
    b = _pthread(1, 2, prefix + side_b, [9], {"ladv_agg": 7.0})
    merged = try_merge(a, b, merged_id=99)
    assert merged is not None
    assert merged.size == 1 + 2 + 2  # prefix once, both suffixes
    assert merged.target_pcs == (9,)
    assert merged.predicted["ladv_agg"] == 17.0


def test_conflicting_suffixes_rejected():
    """Second suffix reading a register the first wrote must not merge."""
    prefix = [_addi(2, 1, 1, 16)]
    side_a = [_addi(4, 5, 1, 8)]           # writes r5
    side_b = [_load(9, 6, 5)]              # reads r5 expecting the prefix
    a = _pthread(0, 2, prefix + side_a, [4])
    b = _pthread(1, 2, prefix + side_b, [9])
    assert try_merge(a, b, 99) is None


def test_different_triggers_never_merge():
    a = _pthread(0, 2, [_load(9, 6, 5)], [9])
    b = _pthread(1, 3, [_load(9, 6, 5)], [9])
    assert try_merge(a, b, 99) is None


def test_suffix_rewriting_its_own_read_is_legal():
    """A suffix may reuse a register the other suffix wrote if it rewrites
    it before reading."""
    prefix = [_addi(2, 1, 1, 16)]
    side_a = [_addi(4, 5, 1, 8), _load(9, 6, 5)]
    side_b = [_addi(5, 5, 1, 24), _load(9, 7, 5)]  # rewrites r5 first
    a = _pthread(0, 2, prefix + side_a, [9])
    b = _pthread(1, 2, prefix + side_b, [9])
    merged = try_merge(a, b, 99)
    assert merged is not None


def test_merge_pthreads_groups_by_trigger():
    prefix = [_addi(2, 1, 1, 16)]
    a = _pthread(0, 2, prefix + [_addi(4, 5, 1, 8), _load(9, 6, 5)], [9])
    b = _pthread(1, 2, prefix + [_addi(6, 5, 1, 16), _load(9, 6, 5)], [9])
    c = _pthread(2, 7, [_load(11, 3, 2)], [11])
    out = merge_pthreads([a, b, c])
    assert len(out) == 2
    triggers = sorted(p.trigger_pc for p in out)
    assert triggers == [2, 7]


def test_merge_dc_trig_not_added():
    prefix = [_addi(2, 1, 1, 16)]
    a = _pthread(0, 2, prefix + [_addi(4, 5, 1, 8), _load(9, 6, 5)], [9],
                 {"dc_trig": 100.0})
    b = _pthread(1, 2, prefix + [_addi(6, 5, 1, 16), _load(9, 6, 5)], [9],
                 {"dc_trig": 100.0})
    merged = try_merge(a, b, 99)
    assert merged.predicted["dc_trig"] == 100.0
