"""Tests for branch direction predictors."""

import random

import pytest

from repro.branch.predictors import (
    BimodalPredictor,
    GsharePredictor,
    HybridPredictor,
)
from repro.errors import ConfigError


def test_bimodal_learns_a_biased_branch():
    p = BimodalPredictor(64)
    for _ in range(4):
        p.update(10, True)
    assert p.predict(10)
    for _ in range(4):
        p.update(10, False)
    assert not p.predict(10)


def test_bimodal_hysteresis():
    p = BimodalPredictor(64)
    for _ in range(4):
        p.update(10, True)
    p.update(10, False)  # one anomaly must not flip the prediction
    assert p.predict(10)


def test_gshare_learns_alternating_pattern():
    p = GsharePredictor(1024, history_bits=8)
    pattern = [True, False] * 200
    correct = 0
    for taken in pattern:
        if p.predict(5) == taken:
            correct += 1
        p.update(5, taken)
    # Bimodal cannot beat ~50% here; gshare should learn it nearly fully.
    assert correct / len(pattern) > 0.9


def test_hybrid_beats_components_on_mixed_workload():
    rng = random.Random(7)
    hybrid = HybridPredictor(1024, history_bits=8)
    bimodal = BimodalPredictor(1024)
    # Branch A: strongly biased.  Branch B: alternating (history-friendly).
    h_correct = b_correct = total = 0
    state = False
    for _ in range(600):
        for pc, taken in ((4, rng.random() < 0.95), (8, state)):
            if pc == 8:
                state = not state
            if hybrid.predict(pc) == taken:
                h_correct += 1
            if bimodal.predict(pc) == taken:
                b_correct += 1
            hybrid.update(pc, taken)
            bimodal.update(pc, taken)
            total += 1
    assert h_correct >= b_correct


def test_predict_and_update_counts_mispredictions():
    p = HybridPredictor(256)
    for _ in range(20):
        p.predict_and_update(4, True)
    early_misses = p.stats.mispredictions
    for _ in range(100):
        p.predict_and_update(4, True)
    # After warm-up, no further mispredictions on a monotone branch.
    assert p.stats.mispredictions == early_misses


def test_random_branch_mispredicts_about_half():
    rng = random.Random(3)
    p = HybridPredictor(256)
    n = 2000
    for _ in range(n):
        p.predict_and_update(12, rng.random() < 0.5)
    rate = p.stats.mispredictions / n
    assert 0.35 < rate < 0.65


def test_table_sizes_must_be_powers_of_two():
    with pytest.raises(ConfigError):
        BimodalPredictor(1000)
    with pytest.raises(ConfigError):
        GsharePredictor(0)
