"""Tests for the branch target buffer."""

import pytest

from repro.branch.btb import BTB
from repro.errors import ConfigError


def test_miss_then_hit():
    btb = BTB(16)
    assert btb.lookup(100) == -1
    btb.update(100, 7)
    assert btb.lookup(100) == 7


def test_lru_capacity_eviction():
    btb = BTB(2)
    btb.update(1, 10)
    btb.update(2, 20)
    btb.lookup(1)        # promote
    btb.update(3, 30)    # evicts pc=2
    assert btb.lookup(1) == 10
    assert btb.lookup(2) == -1


def test_update_overwrites_target():
    btb = BTB(4)
    btb.update(1, 10)
    btb.update(1, 99)
    assert btb.lookup(1) == 99


def test_stats_counted():
    btb = BTB(4)
    btb.lookup(5)
    btb.update(5, 1)
    btb.lookup(5)
    assert btb.stats.lookups == 2
    assert btb.stats.misses == 1


def test_zero_entries_rejected():
    with pytest.raises(ConfigError):
        BTB(0)
