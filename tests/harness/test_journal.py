"""Tests for the checkpoint/resume journal."""

import json

import pytest

from repro import obs
from repro.errors import JournalError
from repro.harness.journal import JOURNAL_SCHEMA, Journal


def _journal(tmp_path):
    return Journal.for_run_dir(str(tmp_path))


def test_missing_file_is_empty_journal(tmp_path):
    journal = _journal(tmp_path)
    assert journal.load() == {}
    assert list(journal.completed_keys()) == []


def test_record_and_load_roundtrip(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", {"cycles": 123}, benchmark="gcc")
    journal.record("cell-b", {"cycles": 456}, benchmark="mcf")

    fresh = _journal(tmp_path)
    fresh.load()
    assert set(fresh.completed_keys()) == {"cell-a", "cell-b"}
    assert fresh.result_for("cell-a") == {"cycles": 123}
    assert fresh.result_for("cell-b") == {"cycles": 456}
    assert fresh.result_for("cell-c") is None


def test_records_carry_metadata(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1, benchmark="gcc", attempts=2)
    record = _journal(tmp_path).load()["cell-a"]
    assert record["benchmark"] == "gcc"
    assert record["attempts"] == 2
    assert record["schema"] == JOURNAL_SCHEMA


def test_torn_tail_is_ignored_silently(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": 1, "key": "cell-b", "resu')  # crash artifact
    entries = _journal(tmp_path).load()
    assert set(entries) == {"cell-a"}


def test_damaged_interior_line_counted_and_skipped(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
    journal.record("cell-b", 2)

    before = obs.counters.snapshot()
    entries = _journal(tmp_path).load()
    delta = obs.counters.delta_since(before)
    assert set(entries) == {"cell-a", "cell-b"}
    assert delta.get("harness.journal.damaged_lines") == 1


def test_foreign_schema_records_skipped(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"schema": 999, "key": "cell-b"}) + "\n")
    assert set(_journal(tmp_path).load()) == {"cell-a"}


def test_corrupt_payload_treated_as_absent(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    entries = _journal(tmp_path)
    loaded = entries.load()
    loaded["cell-a"]["result_b64"] = "!!!not-base64-pickle!!!"
    assert entries.result_for("cell-a") is None


def test_unreadable_journal_raises(tmp_path, monkeypatch):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)

    real_open = open

    def deny(path, *args, **kwargs):
        if str(path) == journal.path:
            raise PermissionError("injected EACCES")
        return real_open(path, *args, **kwargs)

    monkeypatch.setattr("builtins.open", deny)
    with pytest.raises(JournalError, match="cannot read journal"):
        _journal(tmp_path).load()


def test_write_failure_degrades_once(tmp_path, monkeypatch):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)

    real_open = open

    def deny(path, *args, **kwargs):
        if str(path) == journal.path and "a" in args[0]:
            raise OSError(28, "injected ENOSPC")
        return real_open(path, *args, **kwargs)

    monkeypatch.setattr("builtins.open", deny)
    before = obs.counters.snapshot()
    journal.record("cell-b", 2)  # degrades, does not raise
    journal.record("cell-c", 3)  # already degraded: silent no-op
    delta = obs.counters.delta_since(before)
    assert delta.get("harness.journal.degradations") == 1
    monkeypatch.undo()
    assert set(_journal(tmp_path).load()) == {"cell-a"}


def test_discard_removes_file(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    journal.discard()
    assert _journal(tmp_path).load() == {}
    journal.discard()  # idempotent on a missing file


# --------------------------------------------------------------------- #
# Batched fsync (REPRO_JOURNAL_FSYNC_MS)


def test_batched_mode_fsyncs_at_most_once_per_interval(tmp_path):
    journal = Journal.for_run_dir(
        str(tmp_path), fsync_interval_ms=60_000
    )
    before = obs.counters.snapshot()
    for i in range(5):
        journal.record(f"cell-{i}", i)
    mid = obs.counters.delta_since(before)
    # The interval has not elapsed: no per-record fsync happened.
    assert mid.get("harness.journal.fsyncs", 0) == 0
    journal.close()
    after = obs.counters.delta_since(before)
    assert after.get("harness.journal.fsyncs") == 1  # close syncs once


def test_synced_mode_fsyncs_every_record(tmp_path):
    journal = Journal.for_run_dir(str(tmp_path), fsync_interval_ms=0)
    before = obs.counters.snapshot()
    for i in range(3):
        journal.record(f"cell-{i}", i)
    delta = obs.counters.delta_since(before)
    assert delta.get("harness.journal.fsyncs") == 3


def test_kill9_between_syncs_loses_nothing_flushed(tmp_path):
    """Crash simulation: batched-mode records are flushed per record,
    so a dead *process* (handle never closed, fsync never reached)
    still leaves every record readable -- only the torn tail of a
    mid-write crash may drop, and dropping it is clean."""
    journal = Journal.for_run_dir(
        str(tmp_path), fsync_interval_ms=60_000
    )
    journal.record("cell-a", {"cycles": 1})
    journal.record("cell-b", {"cycles": 2})
    # No close(), no sync(): the handle dies with the "process".  Tear
    # the tail the way a crash mid-append would.
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": 1, "key": "cell-c", "resu')

    fresh = Journal.for_run_dir(str(tmp_path))
    loaded = fresh.load()
    assert set(loaded) == {"cell-a", "cell-b"}
    assert fresh.result_for("cell-a") == {"cycles": 1}


def test_fsync_env_var_opts_in(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_JOURNAL_FSYNC_MS", "250")
    journal = Journal.for_run_dir(str(tmp_path))
    assert journal.fsync_interval_s == 0.25
    # An explicit 0 forces per-record fsync regardless of the env.
    forced = Journal.for_run_dir(str(tmp_path), fsync_interval_ms=0)
    assert forced.fsync_interval_s == 0.0


def test_fsync_env_var_garbage_falls_back_to_synced(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_JOURNAL_FSYNC_MS", "soon")
    assert Journal.for_run_dir(str(tmp_path)).fsync_interval_s == 0.0
    monkeypatch.setenv("REPRO_JOURNAL_FSYNC_MS", "-5")
    assert Journal.for_run_dir(str(tmp_path)).fsync_interval_s == 0.0


def test_record_after_close_reopens(tmp_path):
    journal = Journal.for_run_dir(
        str(tmp_path), fsync_interval_ms=60_000
    )
    journal.record("cell-a", 1)
    journal.close()
    journal.record("cell-b", 2)
    journal.close()
    assert set(Journal.for_run_dir(str(tmp_path)).load()) == {
        "cell-a", "cell-b",
    }
