"""Tests for the checkpoint/resume journal."""

import json

import pytest

from repro import obs
from repro.errors import JournalError
from repro.harness.journal import JOURNAL_SCHEMA, Journal


def _journal(tmp_path):
    return Journal.for_run_dir(str(tmp_path))


def test_missing_file_is_empty_journal(tmp_path):
    journal = _journal(tmp_path)
    assert journal.load() == {}
    assert list(journal.completed_keys()) == []


def test_record_and_load_roundtrip(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", {"cycles": 123}, benchmark="gcc")
    journal.record("cell-b", {"cycles": 456}, benchmark="mcf")

    fresh = _journal(tmp_path)
    fresh.load()
    assert set(fresh.completed_keys()) == {"cell-a", "cell-b"}
    assert fresh.result_for("cell-a") == {"cycles": 123}
    assert fresh.result_for("cell-b") == {"cycles": 456}
    assert fresh.result_for("cell-c") is None


def test_records_carry_metadata(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1, benchmark="gcc", attempts=2)
    record = _journal(tmp_path).load()["cell-a"]
    assert record["benchmark"] == "gcc"
    assert record["attempts"] == 2
    assert record["schema"] == JOURNAL_SCHEMA


def test_torn_tail_is_ignored_silently(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": 1, "key": "cell-b", "resu')  # crash artifact
    entries = _journal(tmp_path).load()
    assert set(entries) == {"cell-a"}


def test_damaged_interior_line_counted_and_skipped(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
    journal.record("cell-b", 2)

    before = obs.counters.snapshot()
    entries = _journal(tmp_path).load()
    delta = obs.counters.delta_since(before)
    assert set(entries) == {"cell-a", "cell-b"}
    assert delta.get("harness.journal.damaged_lines") == 1


def test_foreign_schema_records_skipped(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"schema": 999, "key": "cell-b"}) + "\n")
    assert set(_journal(tmp_path).load()) == {"cell-a"}


def test_corrupt_payload_treated_as_absent(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    entries = _journal(tmp_path)
    loaded = entries.load()
    loaded["cell-a"]["result_b64"] = "!!!not-base64-pickle!!!"
    assert entries.result_for("cell-a") is None


def test_unreadable_journal_raises(tmp_path, monkeypatch):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)

    real_open = open

    def deny(path, *args, **kwargs):
        if str(path) == journal.path:
            raise PermissionError("injected EACCES")
        return real_open(path, *args, **kwargs)

    monkeypatch.setattr("builtins.open", deny)
    with pytest.raises(JournalError, match="cannot read journal"):
        _journal(tmp_path).load()


def test_write_failure_degrades_once(tmp_path, monkeypatch):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)

    real_open = open

    def deny(path, *args, **kwargs):
        if str(path) == journal.path and "a" in args[0]:
            raise OSError(28, "injected ENOSPC")
        return real_open(path, *args, **kwargs)

    monkeypatch.setattr("builtins.open", deny)
    before = obs.counters.snapshot()
    journal.record("cell-b", 2)  # degrades, does not raise
    journal.record("cell-c", 3)  # already degraded: silent no-op
    delta = obs.counters.delta_since(before)
    assert delta.get("harness.journal.degradations") == 1
    monkeypatch.undo()
    assert set(_journal(tmp_path).load()) == {"cell-a"}


def test_discard_removes_file(tmp_path):
    journal = _journal(tmp_path)
    journal.record("cell-a", 1)
    journal.discard()
    assert _journal(tmp_path).load() == {}
    journal.discard()  # idempotent on a missing file
