"""Tests for report formatting and aggregation."""

import pytest

from repro.harness.report import (
    format_breakdown_stack,
    format_table,
    geometric_mean_pct,
    summarize,
)


class TestGeometricMean:
    def test_identity_for_single_value(self):
        assert geometric_mean_pct([10.0]) == pytest.approx(10.0)

    def test_zero_gains(self):
        assert geometric_mean_pct([0.0, 0.0]) == pytest.approx(0.0)

    def test_mixed_signs(self):
        # +50% and -100% (ratio 0.5 * 2.0 = 1.0): net zero.
        assert geometric_mean_pct([50.0, -100.0]) == pytest.approx(0.0)

    def test_empty(self):
        assert geometric_mean_pct([]) == 0.0

    def test_full_gain_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean_pct([100.0])

    def test_matches_paper_style_average(self):
        gains = [20.0, 10.0, 5.0]
        value = geometric_mean_pct(gains)
        assert 5.0 < value < 20.0


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.125}]
        text = format_table(rows)
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len({len(line) for line in lines if line}) == 1

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert "b" not in text.splitlines()[0]

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_float_digits(self):
        text = format_table([{"x": 1.23456}], float_digits=3)
        assert "1.235" in text


def test_breakdown_stack_rendering():
    text = format_breakdown_stack("gcc/N", ("mem", "l2"), {"mem": 52.18})
    assert "mem=52.2" in text and "l2=0.0" in text


def test_summarize():
    rows = [{"v": 10.0}, {"v": 20.0}]
    s = summarize(rows, "v")
    assert s["min"] == 10.0 and s["max"] == 20.0
    assert s["mean"] == 15.0
