"""Tests for the per-process trace-artifact memo."""

import pytest

from repro.config import SimulationConfig
from repro.frontend import tracestore
from repro.workloads.registry import get_program

SIM = SimulationConfig()


@pytest.fixture(autouse=True)
def _clean_store():
    tracestore.clear()
    yield
    tracestore.clear()


def test_memo_shares_one_trace_object():
    program = get_program("gcc", "train")
    first, t_first = tracestore.get_trace(program, SIM.max_instructions)
    second, t_second = tracestore.get_trace(program, SIM.max_instructions)
    assert second is first
    assert t_first > 0.0
    assert t_second == 0.0
    stats = tracestore.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1


def test_memo_keyed_by_budget():
    program = get_program("gcc", "train")
    full, _ = tracestore.get_trace(program, SIM.max_instructions)
    # A different instruction budget is a different trace artifact.
    other, _ = tracestore.get_trace(program, SIM.max_instructions + 1)
    assert other is not full
    assert tracestore.stats()["entries"] == 2


def test_memo_keyed_by_program_content():
    gcc, _ = tracestore.get_trace(
        get_program("gcc", "train"), SIM.max_instructions
    )
    twolf, _ = tracestore.get_trace(
        get_program("twolf", "train"), SIM.max_instructions
    )
    assert twolf is not gcc
    assert tracestore.stats() == {"entries": 2, "hits": 0, "misses": 2}


def test_memo_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_MEMO", "0")
    program = get_program("gcc", "train")
    first, t_first = tracestore.get_trace(program, SIM.max_instructions)
    second, t_second = tracestore.get_trace(program, SIM.max_instructions)
    assert second is not first
    assert t_first > 0.0 and t_second > 0.0
    assert tracestore.stats()["entries"] == 0
    # Bit-identical either way.
    assert first.as_lists() == second.as_lists()


def test_clear_drops_entries_and_counters():
    program = get_program("gcc", "train")
    tracestore.get_trace(program, SIM.max_instructions)
    tracestore.clear()
    assert tracestore.stats() == {"entries": 0, "hits": 0, "misses": 0}
