"""Cross-cell analysis sharing: memoized classification, slice trees,
cost functions, and optimized runs must never change results."""

import pytest

from repro.config import MachineConfig
from repro.critpath.classify import (
    classify_trace_cached,
    profile_geometry_key,
)
from repro.frontend import tracestore
from repro.frontend.interpreter import interpret
from repro.harness import figures, simcache
from repro.harness.experiment import clear_baseline_cache
from repro.pthsel.targets import Target
from repro.workloads.registry import get_program


@pytest.fixture(autouse=True)
def _clean_state():
    tracestore.clear()
    clear_baseline_cache()
    yield
    tracestore.clear()
    clear_baseline_cache()


@pytest.fixture()
def trace():
    return interpret(get_program("gcc", "train"), max_instructions=60_000,
                     require_halt=False)


def test_geometry_key_ignores_latencies():
    base = MachineConfig()
    assert profile_geometry_key(
        base.with_memory_latency(300)
    ) == profile_geometry_key(base)
    assert profile_geometry_key(
        base.scaled_l2(128 * 1024, 10)
    ) != profile_geometry_key(base)


def test_classification_shared_across_latencies(trace):
    machine = MachineConfig()
    first = classify_trace_cached(trace, machine)
    again = classify_trace_cached(trace, machine.with_memory_latency(300))
    assert again is first
    other_geom = classify_trace_cached(
        trace, machine.scaled_l2(128 * 1024, 10)
    )
    assert other_geom is not first


def test_classification_memo_disabled_by_env(trace, monkeypatch):
    monkeypatch.setenv("REPRO_ANALYSIS_MEMO", "0")
    machine = MachineConfig()
    first = classify_trace_cached(trace, machine)
    again = classify_trace_cached(trace, machine)
    assert again is not first
    assert first.service == again.service
    assert first.mispredicted == again.mispredicted


def _tiny_grid():
    tracestore.clear()
    clear_baseline_cache()
    return [
        {
            k: v
            for k, v in row.items()
            if not k.startswith("t_") and not k.startswith("src_")
        }
        for row in figures.figure5_memory_latency(
            benchmarks=("gcc",),
            latencies=(100, 200),
            targets=(Target.LATENCY,),
            jobs=1,
        )
    ]


def test_grid_rows_identical_with_and_without_memo(monkeypatch):
    with simcache.disabled():
        shared = _tiny_grid()
        monkeypatch.setenv("REPRO_ANALYSIS_MEMO", "0")
        independent = _tiny_grid()
    assert shared == independent
