"""Lock-step batch planning and prewarm adoption."""

import pytest

from repro.config import MachineConfig, SimulationConfig
from repro.cpu import engine
from repro.frontend import tracestore
from repro.harness import batchplan, experiment, simcache
from repro.harness.experiment import clear_baseline_cache, run_experiment
from repro.pthsel.targets import Target

# mcf halts within this budget and has the fastest cycle loop,
# keeping the real simulations in TestPrewarm cheap.
SIM = SimulationConfig(max_instructions=150_000)


class _Job:
    """Minimal ExperimentJob protocol: just baseline_keys()."""

    def __init__(self, benchmark, machine, sim=SIM, input_name="train"):
        self._keys = [(benchmark, input_name, machine, sim)]

    def baseline_keys(self):
        return list(self._keys)


@pytest.fixture(autouse=True)
def _clean_state():
    tracestore.clear()
    clear_baseline_cache()
    yield
    engine.set_sim_backend(None)
    tracestore.clear()
    clear_baseline_cache()


def _latency_jobs(benchmark="mcf", latencies=(100, 200)):
    return [
        _Job(benchmark, MachineConfig(memory_latency=lat))
        for lat in latencies
    ]


class TestPlanBatches:
    def test_groups_by_shared_trace(self):
        jobs = _latency_jobs("gcc") + _latency_jobs("twolf", (100,))
        groups = batchplan.plan_batches(jobs)
        by_bench = {g.benchmark: g for g in groups}
        assert set(by_bench) == {"gcc", "twolf"}
        assert len(by_bench["gcc"]) == 2
        assert len(by_bench["twolf"]) == 1

    def test_duplicate_machines_collapse(self):
        jobs = _latency_jobs(latencies=(100, 100, 200))
        (group,) = batchplan.plan_batches(jobs)
        assert len(group) == 2
        # First-appearance order is preserved.
        assert [m.machine.memory_latency for m in group.members] == [100, 200]

    def test_different_budgets_do_not_share(self):
        other = SimulationConfig(max_instructions=120_000)
        jobs = [
            _Job("gcc", MachineConfig(memory_latency=100)),
            _Job("gcc", MachineConfig(memory_latency=200), sim=other),
        ]
        assert len(batchplan.plan_batches(jobs)) == 2


class TestPrewarm:
    def test_prewarm_adopts_baselines(self):
        engine.set_sim_backend("batched")
        jobs = _latency_jobs()
        with simcache.disabled():
            stats = batchplan.prewarm(jobs)
            assert stats["groups"] == 1
            assert stats["simulated"] == 2
            for job in jobs:
                for key in job.baseline_keys():
                    assert experiment.baseline_cached(*key)
            # The per-cell experiment is now served from the adopted
            # baseline and says so in its provenance.
            result = run_experiment(
                "mcf",
                target=Target.LATENCY,
                machine=MachineConfig(memory_latency=100),
                sim=SIM,
            )
            assert result.provenance["baseline"] == "batch"

    def test_prewarm_skips_cached_members(self):
        engine.set_sim_backend("batched")
        jobs = _latency_jobs()
        with simcache.disabled():
            batchplan.prewarm(jobs)
            again = batchplan.prewarm(jobs)
        assert again["simulated"] == 0
        assert again["cached"] == 2

    def test_single_member_groups_left_alone(self):
        engine.set_sim_backend("batched")
        with simcache.disabled():
            stats = batchplan.prewarm(_latency_jobs(latencies=(100,)))
        assert stats["groups"] == 0
        assert stats["simulated"] == 0


class TestMaybePrewarm:
    def test_reference_backend_gates_off(self):
        engine.set_sim_backend("reference")
        assert batchplan.maybe_prewarm(_latency_jobs()) is None

    def test_single_job_gates_off(self):
        engine.set_sim_backend("batched")
        assert batchplan.maybe_prewarm(_latency_jobs(latencies=(100,))) is None

    def test_sequential_grid_runs_prewarm(self):
        engine.set_sim_backend("batched")
        with simcache.disabled():
            stats = batchplan.maybe_prewarm(_latency_jobs())
        assert stats is not None and stats["simulated"] == 2
