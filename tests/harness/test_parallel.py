"""Tests for the parallel experiment engine and baseline-cache identity."""

import pytest

from repro import obs
from repro.config import MachineConfig, SimulationConfig
from repro.harness.experiment import (
    _baseline_sim,
    clear_baseline_cache,
)
from repro.harness.figures import result_row
from repro.harness.parallel import (
    ExperimentJob,
    _dedupe_baselines,
    resolve_jobs,
    run_experiments,
)
from repro.pthsel.targets import Target
from repro.workloads import registry

#: The seed programs always run to completion (119k-187k insts), so a
#: smaller instruction budget cannot shrink the work; keep the grids to
#: the cheapest benchmarks instead.
SIM = SimulationConfig()


# --------------------------------------------------------------------- #
# resolve_jobs
# --------------------------------------------------------------------- #


def test_resolve_jobs_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5


def test_resolve_jobs_env_invalid(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ValueError):
        resolve_jobs()


def test_resolve_jobs_default_is_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    import os

    assert resolve_jobs() == max(1, os.cpu_count() or 1)


def test_resolve_jobs_floor_is_one():
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-3) == 1


# --------------------------------------------------------------------- #
# Baseline dedup
# --------------------------------------------------------------------- #


def test_dedupe_baselines_finds_shared_keys():
    jobs = [
        ExperimentJob("gcc", target=t, sim=SIM)
        for t in (Target.LATENCY, Target.ENERGY, Target.ED)
    ]
    shared = _dedupe_baselines(jobs)
    # One benchmark, one input, three targets: one shared baseline.
    assert len(shared) == 1
    assert shared[0][0] == "gcc"


def test_dedupe_baselines_ignores_singletons():
    jobs = [
        ExperimentJob("gcc", sim=SIM),
        ExperimentJob("twolf", sim=SIM),
    ]
    assert _dedupe_baselines(jobs) == []


def test_baseline_keys_include_profile_input():
    job = ExperimentJob("gcc", profile_input="ref", run_input="train")
    keys = job.baseline_keys()
    assert [(k[0], k[1]) for k in keys] == [("gcc", "train"), ("gcc", "ref")]


# --------------------------------------------------------------------- #
# Determinism: jobs=4 == jobs=1 (modulo wall-clock fields)
# --------------------------------------------------------------------- #


def _strip_timings(row):
    # t_* walls and src_* provenance are telemetry: both legitimately
    # depend on execution strategy (jobs, memo warmth, batch prewarm),
    # never on results.
    return {
        k: v
        for k, v in row.items()
        if not k.startswith("t_") and not k.startswith("src_")
    }


def _grid():
    return [
        ExperimentJob(benchmark, target=target, sim=SIM)
        for benchmark in ("parser", "vortex")
        for target in (Target.LATENCY, Target.ENERGY)
    ]


def test_jobs4_matches_jobs1():
    clear_baseline_cache()
    sequential = run_experiments(_grid(), n_jobs=1)
    clear_baseline_cache()
    parallel = run_experiments(_grid(), n_jobs=4)

    assert len(sequential) == len(parallel) == 4
    for seq, par in zip(sequential, parallel):
        assert _strip_timings(result_row(seq)) == _strip_timings(
            result_row(par)
        )


def test_parallel_merges_worker_counters():
    clear_baseline_cache()
    before = obs.counters.snapshot()
    run_experiments(_grid()[:2], n_jobs=2)
    delta = obs.counters.delta_since(before)
    # The simulations happened in worker processes, yet the parent's
    # registry accounts for them.
    assert delta.get("cpu.pipeline.simulations", 0) > 0
    assert delta.get("harness.parallel.jobs_dispatched", 0) == 2
    assert delta.get("harness.parallel.pools_started", 0) == 1


def test_single_job_grid_stays_in_process():
    clear_baseline_cache()
    before = obs.counters.snapshot()
    results = run_experiments(
        [ExperimentJob("gcc", sim=SIM)], n_jobs=4
    )
    delta = obs.counters.delta_since(before)
    assert len(results) == 1
    assert delta.get("harness.parallel.pools_started", 0) == 0


# --------------------------------------------------------------------- #
# Baseline-cache identity: same configs, different programs never alias.
# --------------------------------------------------------------------- #


def test_baseline_cache_keyed_by_workload_content(monkeypatch):
    clear_baseline_cache()
    machine = MachineConfig()
    _, gcc_stats, _ = _baseline_sim("gcc", "train", machine, SIM)
    # Re-register "gcc" to build a different program.  A cache keyed on
    # (name, machine) would now serve the stale gcc result.
    monkeypatch.setitem(
        registry._BUILDERS, "gcc", registry._BUILDERS["twolf"]
    )
    _, swapped_stats, _ = _baseline_sim("gcc", "train", machine, SIM)
    assert swapped_stats.cycles != gcc_stats.cycles

    _, twolf_stats, _ = _baseline_sim("twolf", "train", machine, SIM)
    assert swapped_stats.cycles == twolf_stats.cycles
    clear_baseline_cache()


# --------------------------------------------------------------------- #
# Retry backoff jitter: deterministic, shared with the fault source


def test_backoff_jitter_is_deterministic_per_cell_and_attempt():
    from repro.harness.parallel import RetryPolicy

    policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=2.0)
    key = "somecellkey123"
    first = [policy.delay_for(attempt, key) for attempt in (1, 2, 3, 4)]
    again = [policy.delay_for(attempt, key) for attempt in (1, 2, 3, 4)]
    assert first == again  # replays identically across calls/processes


def test_backoff_jitter_derives_from_the_shared_unit_source():
    from repro import faults
    from repro.harness.parallel import RetryPolicy

    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=2.0, jitter=0.25)
    key, attempt = "cellkey", 2
    sample = faults.unit(f"backoff|{key}:{attempt}")
    base = min(0.1 * 2.0 ** (attempt - 1), 2.0)
    expected = base * (1.0 + 0.25 * (2.0 * sample - 1.0))
    assert policy.delay_for(attempt, key) == pytest.approx(expected)


def test_backoff_jitter_decorrelates_cells():
    from repro.harness.parallel import RetryPolicy

    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=2.0, jitter=0.25)
    delays_a = [policy.delay_for(a, "cell-a") for a in (1, 2, 3)]
    delays_b = [policy.delay_for(a, "cell-b") for a in (1, 2, 3)]
    assert delays_a != delays_b  # a thundering herd spreads out
    for attempt, (a, b) in enumerate(zip(delays_a, delays_b), start=1):
        base = min(0.1 * 2.0 ** (attempt - 1), 2.0)
        for delay in (a, b):  # ...but stays inside the jitter band
            assert base * 0.75 <= delay <= base * 1.25
