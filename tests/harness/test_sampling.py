"""Tests for the periodic-sampling engine."""

import pytest

from repro.config import SimulationConfig
from repro.cpu.pipeline import simulate
from repro.frontend import interpret
from repro.harness.sampling import sampled_simulate
from repro.workloads import get_program


@pytest.fixture(scope="module")
def gap_trace():
    return interpret(get_program("gap"), max_instructions=2_000_000)


def test_full_fraction_equals_direct_simulation(gap_trace):
    direct = simulate(gap_trace)
    est = sampled_simulate(
        gap_trace, sim=SimulationConfig(sample_fraction=1.0)
    )
    assert est.estimated_cycles == direct.cycles
    assert est.n_samples == 1
    assert est.coverage == 1.0


def test_sampled_estimate_close_to_full(gap_trace):
    full = simulate(gap_trace)
    est = sampled_simulate(
        gap_trace,
        sim=SimulationConfig(
            sample_fraction=0.25, sample_instructions=8_000
        ),
    )
    assert est.n_samples >= 3
    assert est.coverage < 0.5
    # Periodic sampling of a steady loop should land within 25%.
    assert est.estimated_cycles == pytest.approx(full.cycles, rel=0.25)


def test_sample_stats_are_per_window(gap_trace):
    est = sampled_simulate(
        gap_trace,
        sim=SimulationConfig(sample_fraction=0.2, sample_instructions=5_000),
    )
    assert len(est.sample_stats) == est.n_samples
    assert est.measured_instructions == sum(
        s.committed for s in est.sample_stats
    )


def test_empty_trace_rejected(gap_trace):
    from repro.errors import ConfigError
    from repro.frontend.trace import Trace

    with pytest.raises(ConfigError):
        sampled_simulate(Trace(gap_trace.program, []))
