"""Fast tests for the figure-data helpers (no simulations)."""


from repro.harness.figures import FigureData


def _rows():
    return [
        {"benchmark": "a", "target": "L", "speedup_pct": 20.0,
         "energy_save_pct": -5.0},
        {"benchmark": "b", "target": "L", "speedup_pct": 10.0,
         "energy_save_pct": -10.0},
        {"benchmark": "a", "target": "E", "speedup_pct": 5.0,
         "energy_save_pct": 1.0},
        {"benchmark": "b", "target": "E", "speedup_pct": 0.0,
         "energy_save_pct": 0.0},
    ]


def test_gmeans_group_by_target():
    data = FigureData(rows=_rows())
    gm = data.gmeans("speedup_pct")
    assert set(gm) == {"L", "E"}
    assert 10.0 < gm["L"] < 20.0
    assert 0.0 <= gm["E"] <= 5.0


def test_gmeans_other_metric():
    data = FigureData(rows=_rows())
    gm = data.gmeans("energy_save_pct")
    assert gm["L"] < 0 < gm["E"] or gm["E"] >= 0


def test_render_contains_all_rows():
    data = FigureData(rows=_rows())
    text = data.render()
    assert text.count("\n") >= 5
    assert "benchmark" in text
