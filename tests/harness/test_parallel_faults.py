"""Tests for the engine's recovery paths: retry, backoff, degradation,
pool rebuilds, timeouts, and checkpoint/resume.

These use fake (instant) jobs -- ``ExperimentJob.run`` is monkeypatched
before any pool exists, and the fork start method carries the patch into
workers -- so they exercise the engine machinery, not the simulator.
"""

import pytest

from repro import faults, obs
from repro.errors import FaultInjectedError, ProgramError, WorkerCrashError
from repro.faults import FaultSpec, draw
from repro.harness.journal import Journal
from repro.harness.parallel import (
    ExperimentJob,
    JobFailure,
    RetryPolicy,
    run_experiments,
)
from repro.pthsel.targets import Target

#: Tiny backoffs keep the retry tests fast without changing semantics.
FAST = RetryPolicy(max_attempts=3, base_delay_s=0.001, max_delay_s=0.005)


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def fake_jobs(monkeypatch):
    """Two instant jobs (patched before any pool forks workers)."""

    def fake_run(self):
        return {"benchmark": self.benchmark, "target": self.target.label}

    monkeypatch.setattr(ExperimentJob, "run", fake_run)
    return [
        ExperimentJob("gcc", target=Target.LATENCY),
        ExperimentJob("mcf", target=Target.ENERGY),
    ]


def _delta(before):
    return obs.counters.delta_since(before)


def _run_key(job, attempt):
    """The effective worker.run draw key for ``job`` at ``attempt``
    (scope ``<cell>:<attempt>`` mixed with the site key ``run``)."""
    return f"{job.cell_key()}:{attempt}|run"


def _seed_faulting_once(job, probability=0.5):
    """A seed where ``job`` faults on attempt 1 but not attempt 2."""
    for seed in range(512):
        spec = FaultSpec("worker.run", probability, seed)
        if draw(spec, _run_key(job, 1)) and not draw(
            spec, _run_key(job, 2)
        ):
            return seed
    raise AssertionError("no such seed in 512 tries")


# --------------------------------------------------------------------- #
# Retry and backoff
# --------------------------------------------------------------------- #


def test_sequential_retry_recovers(fake_jobs):
    job = fake_jobs[0]
    seed = _seed_faulting_once(job)
    before = obs.counters.snapshot()
    with faults.active([f"worker.run:0.5:{seed}"]):
        results = run_experiments(
            [job], n_jobs=1, policy=FAST, degrade=False
        )
    assert results == [{"benchmark": "gcc", "target": "L"}]
    delta = _delta(before)
    assert delta.get("harness.parallel.retries") == 1
    assert delta.get("harness.parallel.recoveries") == 1
    assert delta.get("faults.injected.worker.run") == 1


def test_pool_retry_recovers_bit_identical(fake_jobs):
    seed = _seed_faulting_once(fake_jobs[0])
    spec = FaultSpec("worker.run", 0.5, seed)
    # The other job must also finish inside the retry budget.
    assert not all(
        draw(spec, _run_key(fake_jobs[1], a))
        for a in range(1, FAST.max_attempts + 1)
    )
    expected = [
        {"benchmark": "gcc", "target": "L"},
        {"benchmark": "mcf", "target": "E"},
    ]
    before = obs.counters.snapshot()
    with faults.active([spec]):
        results = run_experiments(
            fake_jobs, n_jobs=2, policy=FAST, degrade=True
        )
    assert results == expected  # same order, same values as fault-free
    delta = _delta(before)
    assert delta.get("harness.parallel.retries", 0) >= 1
    assert delta.get("harness.parallel.recoveries", 0) >= 1
    assert not delta.get("harness.parallel.failures", 0)


def test_exhausted_retries_degrade_to_failure_row(fake_jobs):
    job = fake_jobs[0]
    before = obs.counters.snapshot()
    with faults.active(["worker.run:1.0"]):
        results = run_experiments(
            [job], n_jobs=1, policy=FAST, degrade=True
        )
    (failure,) = results
    assert isinstance(failure, JobFailure)
    assert failure.failed is True
    assert failure.error == "FaultInjectedError"
    assert failure.attempts == FAST.max_attempts
    assert failure.benchmark == "gcc"
    row = failure.row()
    assert row["failed"] is True and row["error"] == "FaultInjectedError"
    delta = _delta(before)
    assert delta.get("harness.parallel.failures") == 1
    assert delta.get("harness.parallel.retries") == FAST.max_attempts - 1


def test_exhausted_retries_raise_without_degrade(fake_jobs):
    with faults.active(["worker.run:1.0"]):
        with pytest.raises(FaultInjectedError):
            run_experiments(
                [fake_jobs[0]], n_jobs=1, policy=FAST, degrade=False
            )


def test_deterministic_errors_fail_fast(monkeypatch):
    def broken_run(self):
        raise ProgramError("label defined nowhere")

    monkeypatch.setattr(ExperimentJob, "run", broken_run)
    job = ExperimentJob("gcc")
    results = run_experiments([job], n_jobs=1, policy=FAST, degrade=True)
    (failure,) = results
    assert isinstance(failure, JobFailure)
    assert failure.error == "ProgramError"
    assert failure.attempts == 1  # no retries for NON_RETRYABLE


# --------------------------------------------------------------------- #
# Pool rebuilds: broken initializers and hung workers
# --------------------------------------------------------------------- #


def _seed_breaking_first_pool(probability=0.5):
    """worker.start fires for epoch 0 but not epochs 1-3 (parent-side
    draws are unscoped)."""
    for seed in range(512):
        spec = FaultSpec("worker.start", probability, seed)
        if draw(spec, "epoch:0") and not any(
            draw(spec, f"epoch:{e}") for e in (1, 2, 3)
        ):
            return seed
    raise AssertionError("no such seed in 512 tries")


def test_broken_pool_is_rebuilt(fake_jobs):
    seed = _seed_breaking_first_pool()
    before = obs.counters.snapshot()
    with faults.active([f"worker.start:0.5:{seed}"]):
        results = run_experiments(
            fake_jobs, n_jobs=2, policy=FAST, degrade=True
        )
    assert results == [
        {"benchmark": "gcc", "target": "L"},
        {"benchmark": "mcf", "target": "E"},
    ]
    delta = _delta(before)
    assert delta.get("harness.parallel.pool_rebuilds", 0) >= 1
    assert delta.get("harness.parallel.pools_started", 0) >= 2
    assert delta.get("faults.injected.worker.start") == 1


def test_unrebuildable_pool_gives_up(fake_jobs):
    # Generous per-cell attempts so the pool-rebuild budget -- not
    # retry exhaustion -- is deterministically what trips first.
    policy = RetryPolicy(
        max_attempts=10, base_delay_s=0.001, max_pool_rebuilds=2
    )
    with faults.active(["worker.start:1.0"]):
        with pytest.raises(WorkerCrashError, match="giving up"):
            run_experiments(
                fake_jobs, n_jobs=2, policy=policy, degrade=True
            )


def _seed_hanging_once(job, other, probability=0.5):
    """``job`` hangs on attempt 1 only; ``other`` never hangs."""
    for seed in range(2048):
        spec = FaultSpec("worker.hang", probability, seed)
        if (
            draw(spec, f"{job.cell_key()}:1|hang")
            and not draw(spec, f"{job.cell_key()}:2|hang")
            and not any(
                draw(spec, f"{other.cell_key()}:{a}|hang")
                for a in (1, 2, 3)
            )
        ):
            return seed
    raise AssertionError("no such seed in 2048 tries")


def test_hung_job_times_out_and_recovers(fake_jobs):
    seed = _seed_hanging_once(fake_jobs[0], fake_jobs[1])
    policy = RetryPolicy(
        max_attempts=3, base_delay_s=0.001, timeout_s=0.5
    )
    before = obs.counters.snapshot()
    with faults.active([f"worker.hang:0.5:{seed}"]):
        results = run_experiments(
            fake_jobs, n_jobs=2, policy=policy, degrade=True
        )
    assert results == [
        {"benchmark": "gcc", "target": "L"},
        {"benchmark": "mcf", "target": "E"},
    ]
    delta = _delta(before)
    assert delta.get("harness.parallel.timeouts") == 1
    assert delta.get("harness.parallel.pool_rebuilds", 0) >= 1


# --------------------------------------------------------------------- #
# Checkpoint / resume
# --------------------------------------------------------------------- #


def test_journal_checkpoints_every_completed_cell(fake_jobs, tmp_path):
    journal = Journal.for_run_dir(str(tmp_path))
    run_experiments(fake_jobs, n_jobs=1, policy=FAST, journal=journal)
    entries = Journal.for_run_dir(str(tmp_path)).load()
    assert set(entries) == {job.cell_key() for job in fake_jobs}


def test_resume_skips_completed_cells(fake_jobs, tmp_path, monkeypatch):
    journal = Journal.for_run_dir(str(tmp_path))
    expected = run_experiments(
        fake_jobs, n_jobs=1, policy=FAST, journal=journal
    )

    # A resumed run must not re-execute finished cells: make execution
    # itself an error.
    def must_not_run(self):
        raise AssertionError("resumed cell was re-executed")

    monkeypatch.setattr(ExperimentJob, "run", must_not_run)
    resumed_journal = Journal.for_run_dir(str(tmp_path))
    resumed_journal.load()
    before = obs.counters.snapshot()
    results = run_experiments(
        fake_jobs, n_jobs=1, policy=FAST, journal=resumed_journal
    )
    assert results == expected
    delta = _delta(before)
    assert delta.get("harness.parallel.cells_resumed") == 2
    assert not delta.get("harness.parallel.jobs_dispatched", 0)


def test_partial_journal_runs_only_missing_cells(
    fake_jobs, tmp_path, monkeypatch
):
    journal = Journal.for_run_dir(str(tmp_path))
    run_experiments(
        [fake_jobs[0]], n_jobs=1, policy=FAST, journal=journal
    )

    ran = []
    original_run = ExperimentJob.run

    def counting_run(self):
        ran.append(self.benchmark)
        return original_run(self)

    monkeypatch.setattr(ExperimentJob, "run", counting_run)
    resumed = Journal.for_run_dir(str(tmp_path))
    resumed.load()
    results = run_experiments(
        fake_jobs, n_jobs=1, policy=FAST, journal=resumed
    )
    assert ran == ["mcf"]  # only the unjournaled cell executed
    assert results == [
        {"benchmark": "gcc", "target": "L"},
        {"benchmark": "mcf", "target": "E"},
    ]


def test_failed_cells_are_not_journaled(fake_jobs, tmp_path):
    journal = Journal.for_run_dir(str(tmp_path))
    with faults.active(["worker.run:1.0"]):
        results = run_experiments(
            fake_jobs, n_jobs=1, policy=FAST, journal=journal,
            degrade=True,
        )
    assert all(isinstance(r, JobFailure) for r in results)
    assert Journal.for_run_dir(str(tmp_path)).load() == {}
