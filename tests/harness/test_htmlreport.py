"""Tests for the self-contained HTML run report."""

import json
import os
from html.parser import HTMLParser

import pytest

from repro.errors import ConfigError
from repro.harness.htmlreport import (
    REPORT_NAME,
    load_run,
    render_html,
    render_report,
)

_VOIDS = {"meta", "br", "hr", "img", "input", "link"}


class _Checker(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOIDS:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"mismatched </{tag}>")
        else:
            self.stack.pop()


def _assert_well_formed(doc):
    checker = _Checker()
    checker.feed(doc)
    assert checker.errors == []
    assert checker.stack == []


def _write_run(tmp_path, with_traces=True):
    manifest = {
        "command": "figure3",
        "run_id": "20260805T000000-1",
        "argv": ["figure3", "--out", "x"],
        "started": "2026-08-05T00:00:00Z",
        "finished": "2026-08-05T00:01:00Z",
        "wall_s": 60.0,
        "n_rows": 2,
        "version": "0.1",
        "python": "3.11",
        "configs": {"machine": {"fingerprint": "abc123", "values": {}}},
    }
    (tmp_path / "manifest.json").write_text(json.dumps(manifest))
    rows = [
        {"benchmark": "gap", "target": "L", "n_pthreads": 2,
         "speedup_pct": 39.7, "energy_save_pct": 10.3,
         "t_baseline": 5.0, "t_sim": 8.0},
        {"benchmark": "gap", "target": "O", "failed": True,
         "error": "ExecutionError", "detail": "boom"},
    ]
    with open(tmp_path / "results.jsonl", "w") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    if with_traces:
        os.makedirs(tmp_path / "utrace", exist_ok=True)
        summary = {
            "label": "gap.L.optimized",
            "cell": "abc",
            "window": [0, 20000],
            "cycles": 20000,
            "committed": 30000,
            "ipc": 1.5,
            "width": 6,
            "insts_recorded": 100,
            "insts_dropped": 0,
            "events": 400,
            "replays": 3,
            "redirects": 2,
            "spawns": 1,
            "stall_slots": {"retiring": 30000, "load_miss": 90000},
            "stall_fractions": {"retiring": 0.25, "load_miss": 0.75},
            "latency_breakdown": {"mem": 15000, "fetch": 5000},
            "energy_audit": {
                "ok": True,
                "tolerance": 1e-3,
                "max_rel_error": 0.0,
                "event_total_joules": 1.0,
                "closed_form_joules": 1.0,
                "per_category": {
                    "imem_main": {"event": 0.4, "closed_form": 0.4},
                    "idle": {"event": 0.6, "closed_form": 0.6},
                },
            },
        }
        (tmp_path / "utrace" / "gap.L.optimized.abc.summary.json"
         ).write_text(json.dumps(summary))
    return tmp_path


def test_load_run_missing_artifacts_raises(tmp_path):
    with pytest.raises(ConfigError, match="no run artifacts"):
        load_run(str(tmp_path))


def test_render_report_writes_default_path(tmp_path):
    _write_run(tmp_path)
    path = render_report(str(tmp_path))
    assert path == str(tmp_path / REPORT_NAME)
    doc = open(path).read()
    _assert_well_formed(doc)


def test_report_contains_all_sections(tmp_path):
    _write_run(tmp_path)
    doc = render_html(load_run(str(tmp_path)))
    for heading in (
        "Results", "Phase timings", "Top-down stall attribution",
        "Energy audit", "Trace inventory",
    ):
        assert heading in doc
    assert "gap.L.optimized" in doc
    assert "audit ok" in doc
    assert "1 failed cell(s)" in doc
    assert "abc123" in doc  # config fingerprint from the manifest
    assert "<script" not in doc  # self-contained: no JS


def test_report_without_traces_degrades(tmp_path):
    _write_run(tmp_path, with_traces=False)
    doc = render_html(load_run(str(tmp_path)))
    _assert_well_formed(doc)
    assert "no utrace summaries" in doc
    assert "Trace inventory" not in doc


def test_report_escapes_labels(tmp_path):
    _write_run(tmp_path, with_traces=False)
    rows = [{"benchmark": "<script>alert(1)</script>", "target": "L"}]
    with open(tmp_path / "results.jsonl", "w") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    doc = render_html(load_run(str(tmp_path)))
    assert "<script>alert" not in doc
    assert "&lt;script&gt;" in doc


def test_render_report_custom_output(tmp_path):
    _write_run(tmp_path)
    out = tmp_path / "sub" / "r.html"
    assert render_report(str(tmp_path), output=str(out)) == str(out)
    assert out.exists()


def test_untraced_run_renders_placeholders(tmp_path):
    """Stall/energy sections degrade to '(untraced run)', not errors."""
    _write_run(tmp_path, with_traces=False)
    doc = render_html(load_run(str(tmp_path)))
    _assert_well_formed(doc)
    assert doc.count("(untraced run)") == 2  # stalls + energy sections
    assert "Top-down stall attribution" in doc
    assert "Energy audit" in doc


def test_corrupt_summary_does_not_break_report(tmp_path):
    _write_run(tmp_path, with_traces=True)
    (tmp_path / "utrace" / "zz.broken.summary.json").write_text("{ nope")
    data = load_run(str(tmp_path))
    assert len(data.summaries) == 1  # the broken one is dropped, logged
    doc = render_html(data)
    _assert_well_formed(doc)
    assert "gap.L.optimized" in doc


def test_summary_without_window_renders(tmp_path):
    _write_run(tmp_path, with_traces=True)
    path = tmp_path / "utrace" / "gap.L.optimized.abc.summary.json"
    summary = json.loads(path.read_text())
    del summary["window"]
    path.write_text(json.dumps(summary))
    doc = render_html(load_run(str(tmp_path)))
    _assert_well_formed(doc)
    assert "?..?" in doc


def test_timeline_section_hints_when_store_empty(tmp_path):
    _write_run(tmp_path)
    store_dir = str(tmp_path / "no-store-here")
    doc = render_html(load_run(str(tmp_path)), store_dir=store_dir)
    _assert_well_formed(doc)
    assert "Timeline" in doc
    assert "no analytics store" in doc
    assert "repro analytics ingest" in doc


def test_timeline_section_renders_from_store(tmp_path):
    from repro.analytics import RunStore

    _write_run(tmp_path)
    store = RunStore(str(tmp_path / "store"))
    store.append_rows(
        [{"benchmark": "gap", "target": "L", "ed2_save_pct": 30.0}],
        run_id="r1",
    )
    doc = render_html(load_run(str(tmp_path)), store_dir=store.root)
    _assert_well_formed(doc)
    assert "trajectory ok" in doc
    assert "gmean_ed2_save_pct[L]" in doc
    assert "<svg" in doc
    assert "<script" not in doc


def _write_spans(tmp_path):
    spans = [
        {"name": "http POST /v1/experiments", "trace_id": "a" * 32,
         "span_id": "1" * 16, "parent_span_id": None,
         "start_s": 100.0, "end_s": 100.8, "process": "client", "tid": 1},
        {"name": "queue.wait", "trace_id": "a" * 32, "span_id": "2" * 16,
         "parent_span_id": "1" * 16, "start_s": 100.1, "end_s": 100.3,
         "process": "server", "tid": 2},
        {"name": "simulate", "trace_id": "a" * 32, "span_id": "3" * 16,
         "parent_span_id": "2" * 16, "start_s": 100.3, "end_s": 100.7,
         "process": "pool-worker-9", "tid": 3},
    ]
    with open(tmp_path / "spans.jsonl", "w") as fh:
        for span in spans:
            fh.write(json.dumps(span) + "\n")


def test_waterfall_section_renders_spans(tmp_path):
    _write_run(tmp_path)
    _write_spans(tmp_path)
    doc = render_html(load_run(str(tmp_path)))
    _assert_well_formed(doc)
    assert "Request waterfall" in doc
    assert "http POST /v1/experiments" in doc
    assert "queue.wait" in doc
    assert "simulate" in doc
    # Each row labels its originating process: the whole point is
    # seeing client/server/worker on one timeline.
    assert "[client]" in doc
    assert "[pool-worker-9]" in doc


def test_waterfall_section_hints_without_spans(tmp_path):
    _write_run(tmp_path)
    doc = render_html(load_run(str(tmp_path)))
    _assert_well_formed(doc)
    assert "Request waterfall" in doc
    assert "spans.jsonl" in doc  # the hint names the missing artifact


def test_waterfall_tolerates_damaged_span_lines(tmp_path):
    _write_run(tmp_path)
    (tmp_path / "spans.jsonl").write_text(
        "garbage line\n"
        + json.dumps({"name": "ok", "trace_id": "b" * 32,
                      "span_id": "4" * 16, "parent_span_id": None,
                      "start_s": 1.0, "end_s": 2.0,
                      "process": "cli", "tid": 1}) + "\n"
    )
    doc = render_html(load_run(str(tmp_path)))
    _assert_well_formed(doc)
    assert "Request waterfall" in doc
    assert "ok" in doc
