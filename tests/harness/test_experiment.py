"""Integration tests for the experiment harness."""

import pytest

from repro.config import MachineConfig
from repro.harness.experiment import (
    clear_baseline_cache,
    run_baseline,
    run_experiment,
)
from repro.pthsel.targets import Target


@pytest.fixture(scope="module")
def gap_latency():
    clear_baseline_cache()
    return run_experiment("gap", target=Target.LATENCY)


def test_baseline_measurement_consistency():
    m = run_baseline("gap")
    assert m.cycles > 0
    assert m.joules > 0
    assert m.stats.committed > 0


def test_experiment_improves_latency(gap_latency):
    assert gap_latency.speedup_pct > 5.0
    assert gap_latency.optimized.cycles < gap_latency.baseline.cycles


def test_metrics_consistent_with_measurements(gap_latency):
    r = gap_latency
    expected = 100.0 * (1 - r.optimized.cycles / r.baseline.cycles)
    assert r.speedup_pct == pytest.approx(expected)
    rel_d = 1 - r.speedup_pct / 100
    rel_e = 1 - r.energy_save_pct / 100
    assert 1 - r.ed_save_pct / 100 == pytest.approx(rel_d * rel_e, rel=1e-6)


def test_diagnostics_ranges(gap_latency):
    d = gap_latency.diagnostics()
    assert 0 <= d["usefulness_pct"] <= 100
    assert 0 <= d["full_coverage_pct"] <= 110
    assert d["avg_pthread_length"] > 0
    assert d["spawns"] > 0


def test_summary_row_keys(gap_latency):
    row = gap_latency.summary_row()
    for key in ("speedup_pct", "energy_save_pct", "ed_save_pct",
                "full_coverage_pct", "pinst_increase_pct"):
        assert key in row


def test_baseline_cache_reused():
    clear_baseline_cache()
    a = run_baseline("gcc")
    b = run_baseline("gcc")
    assert a.stats is b.stats  # memoized simulation object


def test_realistic_profiling_runs():
    r = run_experiment("gcc", target=Target.LATENCY, profile_input="ref")
    assert r.baseline.cycles > 0
    # Selection happened against the ref profile; run is on train.
    assert r.benchmark == "gcc"


def test_machine_override_changes_baseline():
    clear_baseline_cache()
    slow = run_baseline("gap",
                        machine=MachineConfig().with_memory_latency(300))
    fast = run_baseline("gap",
                        machine=MachineConfig().with_memory_latency(100))
    assert slow.cycles > fast.cycles


def test_invalid_config_fails_before_simulating():
    from repro.errors import ConfigError
    from repro.harness.experiment import run_experiment

    with pytest.raises(
        ConfigError, match=r"MachineConfig\.pipeline_stages"
    ):
        run_experiment("gap", machine=MachineConfig(pipeline_stages=3))
