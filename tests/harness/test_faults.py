"""Tests for the deterministic fault-injection registry."""

import pytest

from repro import faults, obs
from repro.errors import ConfigError, FaultInjectedError
from repro.faults import FaultPlan, FaultSpec, draw


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    """Each test starts with no plan and no REPRO_FAULTS leakage."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


# --------------------------------------------------------------------- #
# Spec parsing and validation
# --------------------------------------------------------------------- #


def test_parse_site_prob():
    spec = FaultSpec.parse("worker.run:0.3")
    assert spec.site == "worker.run"
    assert spec.probability == 0.3
    assert spec.seed == 0


def test_parse_with_seed():
    spec = FaultSpec.parse("simcache.read:1.0:42")
    assert spec.seed == 42


def test_parse_roundtrips_through_encode():
    spec = FaultSpec.parse("worker.run:0.25:7")
    assert FaultSpec.parse(spec.encode()) == spec


def test_unknown_site_rejected():
    with pytest.raises(ConfigError, match="unknown fault site"):
        FaultSpec.parse("worker.nap:0.5")


def test_probability_out_of_range_rejected():
    with pytest.raises(ConfigError, match="must be in \\[0, 1\\]"):
        FaultSpec.parse("worker.run:1.5")


def test_malformed_spec_rejected():
    with pytest.raises(ConfigError, match="expected SITE:prob"):
        FaultSpec.parse("worker.run")
    with pytest.raises(ConfigError, match="expected SITE:prob"):
        FaultSpec.parse("worker.run:lots")


def test_duplicate_site_rejected():
    with pytest.raises(ConfigError, match="duplicate"):
        FaultPlan([FaultSpec.parse("worker.run:0.1"),
                   FaultSpec.parse("worker.run:0.2")])


# --------------------------------------------------------------------- #
# Deterministic draws
# --------------------------------------------------------------------- #


def test_draw_is_deterministic():
    spec = FaultSpec("worker.run", 0.5, seed=3)
    assert all(
        draw(spec, f"cell:{i}") == draw(spec, f"cell:{i}")
        for i in range(64)
    )


def test_draw_depends_on_seed_site_and_key():
    keys = [f"k{i}" for i in range(256)]
    a = [draw(FaultSpec("worker.run", 0.5, 0), k) for k in keys]
    assert a != [draw(FaultSpec("worker.run", 0.5, 1), k) for k in keys]
    assert a != [draw(FaultSpec("worker.hang", 0.5, 0), k) for k in keys]


def test_draw_rate_tracks_probability():
    spec = FaultSpec("worker.run", 0.3, seed=0)
    fired = sum(draw(spec, i) for i in range(2000))
    assert 0.25 < fired / 2000 < 0.35


def test_probability_extremes():
    assert not any(
        draw(FaultSpec("worker.run", 0.0), i) for i in range(50)
    )
    assert all(draw(FaultSpec("worker.run", 1.0), i) for i in range(50))


# --------------------------------------------------------------------- #
# Plans, helpers, accounting
# --------------------------------------------------------------------- #


def test_no_plan_never_faults():
    assert not faults.should_fault("worker.run", key="x")
    assert not faults.site_active("worker.run")
    faults.raise_if("worker.run", key="x")  # no-op


def test_env_var_resolves_lazily(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "worker.run:1.0:5")
    faults.reset()
    assert faults.site_active("worker.run")
    assert faults.should_fault("worker.run", key="anything")


def test_configure_empty_overrides_env(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "worker.run:1.0")
    faults.configure([])
    assert not faults.should_fault("worker.run", key="x")


def test_injection_counts_and_events():
    faults.configure(["worker.run:1.0"])
    before = obs.counters.snapshot()
    assert faults.should_fault("worker.run", key="a")
    assert faults.should_fault("worker.run", key="b")
    delta = obs.counters.delta_since(before)
    assert delta.get("faults.injected.worker.run") == 2
    assert faults.injected_counts()["worker.run"] >= 2


def test_raise_if_raises_structured_error():
    faults.configure(["worker.run:1.0"])
    with pytest.raises(FaultInjectedError) as exc_info:
        faults.raise_if("worker.run", key="cell:1")
    assert exc_info.value.site == "worker.run"
    assert exc_info.value.context["key"] == "cell:1"


def test_raise_os_if_raises_oserror():
    faults.configure(["simcache.read:1.0"])
    with pytest.raises(OSError):
        faults.raise_os_if("simcache.read", key="k")


def test_active_context_restores_previous_plan():
    faults.configure(["worker.run:1.0"])
    with faults.active(["worker.hang:1.0"]):
        assert faults.site_active("worker.hang")
        assert not faults.site_active("worker.run")
    assert faults.site_active("worker.run")
    assert not faults.site_active("worker.hang")


def test_encode_plan_ships_specs():
    faults.configure(["worker.run:0.3:7", "simcache.write:0.1"])
    encoded = faults.encode_plan()
    rebuilt = faults.FaultPlan([FaultSpec.parse(s) for s in encoded])
    assert rebuilt.by_site.keys() == {"worker.run", "simcache.write"}
    assert rebuilt.by_site["worker.run"].seed == 7


def test_scope_changes_draws():
    """The ambient scope makes retried deterministic replays re-draw."""
    spec = FaultSpec("pipeline.step", 0.5, seed=0)
    faults.configure([spec])
    plan = faults.current_plan()

    def fire(scope):
        with faults.scoped(scope):
            return [
                plan.should_fault("pipeline.step", key=f"cycle:{c}")
                for c in range(0, 64)
            ]

    attempt1, attempt2 = fire("cell:1"), fire("cell:2")
    assert attempt1 != attempt2  # fresh samples per attempt
    assert attempt1 == fire("cell:1")  # but each attempt reproducible


def test_pristine_suppresses_any_ambient_plan():
    faults.configure(["worker.run:1"])
    assert faults.should_fault("worker.run", key="x")
    with faults.pristine():
        assert not faults.should_fault("worker.run", key="x")
        assert not faults.site_active("worker.run")
    # The ambient plan is restored afterwards.
    assert faults.should_fault("worker.run", key="x")


def test_unit_is_a_stable_pure_function():
    samples = [faults.unit(f"material-{i}") for i in range(64)]
    assert samples == [faults.unit(f"material-{i}") for i in range(64)]
    assert all(0.0 <= s < 1.0 for s in samples)
    assert len(set(samples)) == 64  # distinct materials, distinct draws
