"""End-to-end tests: CLI artifacts, telemetry wiring, and the LRU
baseline cache."""

import csv
import json

import pytest

from repro import obs
from repro.cli import main
from repro.config import MachineConfig, SimulationConfig
from repro.harness import experiment
from repro.harness.figures import FigureData

#: Columns every (benchmark, target) result row must carry.
ROW_KEYS = {
    "benchmark", "target", "n_pthreads",
    "speedup_pct", "energy_save_pct", "ed_save_pct", "ed2_save_pct",
    "full_coverage_pct", "partial_coverage_pct", "pinst_increase_pct",
    "usefulness_pct", "avg_pthread_length", "spawns",
}
PHASE_KEYS = {"t_baseline", "t_profile", "t_select", "t_augment",
              "t_simulate", "t_total"}


@pytest.fixture(autouse=True)
def _quiet_obs():
    obs.reset()
    yield
    obs.reset()


def test_run_json_out_produces_artifacts(tmp_path, capsys):
    out = tmp_path / "demo"
    assert main(["run", "gap", "--json", "--out", str(out)]) == 0
    stdout = capsys.readouterr().out
    row = json.loads(stdout.strip())
    assert ROW_KEYS <= set(row)
    assert PHASE_KEYS <= set(row)
    assert row["benchmark"] == "gap" and row["target"] == "L"

    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["command"] == "run"
    assert manifest["n_rows"] == 1
    assert set(manifest["configs"]) == {
        "machine", "energy", "selection", "simulation"
    }
    assert (
        manifest["configs"]["machine"]["fingerprint"]
        == MachineConfig().fingerprint
    )
    assert "cpu.pipeline.simulations" in manifest["counters"]

    results = (out / "results.jsonl").read_text().splitlines()
    assert len(results) == 1
    assert json.loads(results[0])["ed2_save_pct"] == row["ed2_save_pct"]

    with open(out / "run_table.csv", newline="") as fh:
        table = list(csv.DictReader(fh))
    assert len(table) == 1
    assert table[0]["benchmark"] == "gap"
    assert table[0]["run_id"]

    # A second run into the same directory appends a run_table row.
    assert main(["run", "gap", "--json", "--out", str(out)]) == 0
    capsys.readouterr()
    with open(out / "run_table.csv", newline="") as fh:
        assert len(list(csv.DictReader(fh))) == 2


def test_run_text_includes_ed2_and_quiet_suppresses_describe(capsys):
    assert main(["run", "gap"]) == 0
    out = capsys.readouterr().out
    assert "ed2_save_pct" in out
    assert "p-threads over" in out  # the selection description

    assert main(["run", "gap", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "ed2_save_pct" in out
    assert "p-threads over" not in out


def test_run_log_level_emits_span_events(capsys):
    # Earlier tests in this process may have warmed the in-process
    # caches for this exact experiment; the span assertions below need
    # the simulations to actually run.
    experiment.clear_baseline_cache()
    assert main(["run", "gap", "--quiet", "--log-level", "info"]) == 0
    err = capsys.readouterr().err
    events = [json.loads(line) for line in err.splitlines() if line]
    names = {e.get("name") for e in events if e["event"] == "span_end"}
    assert {"select", "simulate", "experiment"} <= names
    done = [e for e in events if e["event"] == "sim.done"]
    assert done and done[-1]["cycles_per_sec"] > 0


def test_figure3_out_emits_rows_with_phase_timings(tmp_path, capsys,
                                                   monkeypatch):
    # Plumbing test: a stubbed figure3 keeps this fast while exercising
    # the full artifact path (rows -> jsonl/csv/manifest + gmeans).
    rows = [
        {"benchmark": "gap", "target": t, "speedup_pct": s,
         "energy_save_pct": s / 2, "ed_save_pct": s / 3,
         "t_select": 0.5, "t_simulate": 1.5, "t_total": 2.0}
        for t, s in (("O", 10.0), ("L", 12.0))
    ]
    from repro.harness import figures

    monkeypatch.setattr(
        figures, "figure3",
        lambda benchmarks=None, jobs=None: FigureData(rows=list(rows)),
    )
    out = tmp_path / "fig3"
    assert main(["figure3", "--benchmarks", "gap", "--json",
                 "--out", str(out)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    emitted = [json.loads(line) for line in lines]
    assert [r.get("target") for r in emitted[:2]] == ["O", "L"]
    assert emitted[-1]["event"] == "gmeans"
    assert "speedup_pct" in emitted[-1]

    results = [json.loads(line)
               for line in (out / "results.jsonl").read_text().splitlines()]
    assert all({"t_select", "t_simulate", "t_total"} <= set(r)
               for r in results)
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["benchmarks"] == ["gap"]
    assert "speedup_pct" in manifest["gmeans"]


def test_phase_seconds_on_experiment_result():
    result = experiment.run_experiment("gap")
    assert {"baseline", "profile", "select", "augment", "simulate",
            "total"} <= set(result.phase_seconds)
    assert result.phase_seconds["total"] >= result.phase_seconds["simulate"]


# --------------------------------------------------------------------- #
# LRU baseline cache.
# --------------------------------------------------------------------- #


class _FakeStats:
    cycles = 100
    committed = 10


def test_baseline_cache_is_lru_not_fifo(monkeypatch):
    experiment.clear_baseline_cache()
    monkeypatch.setattr(experiment, "_BASELINE_CACHE_LIMIT", 2)
    class _FakeProgram(str):
        # The baseline cache keys on workload *content*; here each
        # name stands in for distinct content.
        def fingerprint(self):
            return str(self)

    monkeypatch.setattr(
        experiment, "get_program", lambda b, i: _FakeProgram(b)
    )
    monkeypatch.setattr(
        experiment.tracestore, "get_trace_tagged",
        lambda program, max_instructions: (f"trace-{program}", 0.0, "memo"),
    )
    monkeypatch.setattr(
        experiment, "simulate", lambda trace, machine: _FakeStats()
    )
    machine, sim = MachineConfig(), SimulationConfig()
    hits0 = experiment._CACHE_HITS.value
    misses0 = experiment._CACHE_MISSES.value
    evict0 = experiment._CACHE_EVICTIONS.value

    experiment._baseline_sim("aa", "train", machine, sim)  # miss
    experiment._baseline_sim("bb", "train", machine, sim)  # miss
    experiment._baseline_sim("aa", "train", machine, sim)  # hit -> aa is MRU
    experiment._baseline_sim("cc", "train", machine, sim)  # miss, evicts bb

    keys = [k[0] for k in experiment._BASELINE_CACHE]
    assert "aa" in keys, "LRU must keep the recently-hit entry"
    assert "bb" not in keys, "LRU must evict the least-recently-used entry"
    assert "cc" in keys
    assert experiment._CACHE_HITS.value - hits0 == 1
    assert experiment._CACHE_MISSES.value - misses0 == 3
    assert experiment._CACHE_EVICTIONS.value - evict0 == 1

    stats = experiment.baseline_cache_stats()
    assert stats["entries"] == 2 and stats["limit"] == 2
    experiment.clear_baseline_cache()
