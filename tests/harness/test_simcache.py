"""Tests for the persistent, content-addressed simulation cache."""

import os
import pickle

import pytest

from repro.harness import simcache
from repro.harness.simcache import SimCache


@pytest.fixture
def cache(tmp_path):
    return SimCache(str(tmp_path / "cache"))


def _entry_files(cache):
    return list(cache._entry_paths())


def test_round_trip(cache):
    material = {"kind": "baseline_stats", "benchmark": "gcc", "x": 1}
    payload = {"cycles": 12345, "nested": [1, 2, {"a": True}]}
    assert cache.get(material) is None
    cache.put(material, payload)
    assert cache.get(material) == payload


def test_distinct_material_distinct_keys(cache):
    a = {"benchmark": "gcc", "machine": "m1"}
    b = {"benchmark": "twolf", "machine": "m1"}
    assert cache.key(a) != cache.key(b)
    cache.put(a, "A")
    cache.put(b, "B")
    assert cache.get(a) == "A"
    assert cache.get(b) == "B"


def test_key_is_stable_under_dict_ordering(cache):
    assert cache.key({"a": 1, "b": 2}) == cache.key({"b": 2, "a": 1})


def test_truncated_entry_is_miss_and_evicted(cache):
    material = {"benchmark": "mcf"}
    cache.put(material, {"cycles": 1})
    (path,) = _entry_files(cache)
    with open(path, "r+b") as fh:
        fh.truncate(10)
    assert cache.get(material) is None  # no exception
    assert _entry_files(cache) == []  # evicted
    # And a re-put heals it.
    cache.put(material, {"cycles": 2})
    assert cache.get(material) == {"cycles": 2}


def test_garbage_entry_is_miss_not_crash(cache):
    material = {"benchmark": "vpr"}
    cache.put(material, "ok")
    (path,) = _entry_files(cache)
    with open(path, "wb") as fh:
        fh.write(b"this is not a pickle")
    assert cache.get(material) is None


def test_foreign_envelope_is_rejected(cache):
    """An entry whose envelope key disagrees with its path is stale."""
    material = {"benchmark": "gap"}
    cache.put(material, "ok")
    (path,) = _entry_files(cache)
    with open(path, "rb") as fh:
        envelope = pickle.load(fh)
    envelope["key"] = "0" * 64
    with open(path, "wb") as fh:
        pickle.dump(envelope, fh)
    assert cache.get(material) is None


def test_code_version_invalidates(cache, monkeypatch):
    material = {"benchmark": "twolf"}
    cache.put(material, "old-code-result")
    monkeypatch.setattr(simcache, "_code_version_cache", "f" * 16)
    # New code version -> different key -> miss, never the stale payload.
    assert cache.get(material) is None
    cache.put(material, "new-code-result")
    assert cache.get(material) == "new-code-result"
    monkeypatch.setattr(simcache, "_code_version_cache", None)


def test_schema_version_invalidates(cache, monkeypatch):
    material = {"benchmark": "bzip2"}
    cache.put(material, "v1-result")
    monkeypatch.setattr(simcache, "SCHEMA_VERSION", 999)
    assert cache.get(material) is None


def test_stats_and_clear(cache):
    for i in range(3):
        cache.put({"i": i}, {"payload": i})
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["bytes"] > 0
    assert stats["dir"] == cache.root
    removed = cache.clear()
    assert removed == 3
    assert cache.stats()["entries"] == 0


def test_atomic_write_leaves_no_temp_files(cache):
    cache.put({"x": 1}, "payload")
    names = []
    for _, _, files in os.walk(cache.root):
        names.extend(files)
    assert all(not n.startswith(".tmp-") for n in names)


def test_get_cache_respects_env_and_configure(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    simcache.reset()
    try:
        assert simcache.get_cache() is None
        # An explicit directory opts back in even under REPRO_CACHE=0.
        simcache.configure(cache_dir=str(tmp_path / "c"))
        cache = simcache.get_cache()
        assert cache is not None
        assert cache.root == str(tmp_path / "c")
    finally:
        simcache.reset()


def test_disabled_context_manager(tmp_path):
    simcache.reset()
    try:
        simcache.configure(cache_dir=str(tmp_path / "c"))
        assert simcache.get_cache() is not None
        with simcache.disabled():
            assert simcache.get_cache() is None
        assert simcache.get_cache() is not None
    finally:
        simcache.reset()


# --------------------------------------------------------------------- #
# I/O degradation: a failing cache must never abort the run it was
# merely accelerating.
# --------------------------------------------------------------------- #


def test_write_fault_degrades_once(cache):
    from repro import faults, obs

    before = obs.counters.snapshot()
    with faults.active(["simcache.write:1.0"]):
        key = cache.put({"benchmark": "gcc"}, "payload")
        assert key  # the caller still gets its key back
        assert cache.degraded
        cache.put({"benchmark": "mcf"}, "other")  # silent no-op now
    delta = obs.counters.delta_since(before)
    assert delta.get("harness.simcache.degradations") == 1
    assert not delta.get("harness.simcache.writes", 0)


def test_read_fault_degrades_to_permanent_miss(cache):
    from repro import faults

    material = {"benchmark": "vpr"}
    cache.put(material, "stored")
    with faults.active(["simcache.read:1.0"]):
        assert cache.get(material) is None
    assert cache.degraded
    # Degraded even after the fault plan is gone: entry stays invisible.
    assert cache.get(material) is None


def test_enospc_on_put_degrades_instead_of_raising(cache, monkeypatch):
    def no_space(src, dst):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(os, "replace", no_space)
    cache.put({"benchmark": "gcc"}, "payload")  # must not raise
    assert cache.degraded
    monkeypatch.undo()
    # Payload was dropped, not torn: directory holds no temp litter.
    names = []
    for _, _, files in os.walk(cache.root):
        names.extend(files)
    assert all(not n.startswith(".tmp-") for n in names)


def test_permission_error_on_put_degrades(cache, monkeypatch):
    def denied(path, exist_ok=False):
        raise PermissionError(13, "Permission denied")

    monkeypatch.setattr(os, "makedirs", denied)
    cache.put({"benchmark": "gcc"}, "payload")  # must not raise
    assert cache.degraded


@pytest.mark.skipif(
    os.geteuid() == 0, reason="root ignores directory permissions"
)
def test_readonly_cache_dir_degrades(tmp_path):
    root = tmp_path / "ro-cache"
    root.mkdir()
    os.chmod(root, 0o500)
    try:
        cache = SimCache(str(root))
        cache.put({"benchmark": "gcc"}, "payload")  # must not raise
        assert cache.degraded
    finally:
        os.chmod(root, 0o700)


def test_degraded_cache_leaves_get_cache_none(tmp_path, monkeypatch):
    simcache.reset()
    try:
        simcache.configure(cache_dir=str(tmp_path / "c"))
        cache = simcache.get_cache()
        assert cache is not None

        def no_space(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", no_space)
        cache.put({"benchmark": "gcc"}, "payload")
        assert simcache.get_cache() is None  # callers skip hashing too
    finally:
        simcache.reset()
