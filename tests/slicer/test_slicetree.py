"""Tests for slice-tree construction and annotation."""

import pytest

from repro.critpath.classify import classify_trace
from repro.frontend import interpret
from repro.slicer import build_slice_tree, identify_problem_loads
from repro.workloads import get_program


@pytest.fixture(scope="module")
def gap_tree():
    trace = interpret(get_program("gap"), max_instructions=2_000_000)
    cls = classify_trace(trace)
    pcs = identify_problem_loads(cls)
    prog = trace.program
    bag_pc = next(i.pc for i in prog if i.annotation == "problem:gap-bag")
    assert bag_pc in pcs
    return trace, cls, build_slice_tree(trace, cls, bag_pc)


def test_root_is_problem_load(gap_tree):
    _, _, tree = gap_tree
    assert tree.root.pc == tree.root_pc
    assert tree.root.depth == 0


def test_instance_counts(gap_tree):
    trace, cls, tree = gap_tree
    assert tree.instances == len(trace.occurrences(tree.root_pc))
    assert 0 < tree.instances_missed <= tree.instances


def test_counts_decrease_with_depth(gap_tree):
    _, _, tree = gap_tree
    for node in tree.candidates():
        if node.parent is not None and node.parent.depth > 0:
            assert node.count_total <= node.parent.count_total
            assert node.count_miss <= node.parent.count_miss


def test_distance_grows_with_depth(gap_tree):
    _, _, tree = gap_tree
    chain = []
    node = tree.root
    while node.children:
        node = next(iter(node.children.values()))
        chain.append(node)
    distances = [n.avg_distance for n in chain if n.count_total > 10]
    assert distances == sorted(distances)


def test_dc_trig_is_whole_trace_occurrences(gap_tree):
    trace, _, tree = gap_tree
    for node in tree.candidates():
        assert tree.dc_trig(node) == len(trace.occurrences(node.pc))


def test_body_pcs_end_at_root(gap_tree):
    _, _, tree = gap_tree
    for node in tree.candidates():
        body = node.body_pcs()
        assert body[-1] == tree.root_pc
        assert len(body) == node.depth


def test_path_to_root_connects(gap_tree):
    _, _, tree = gap_tree
    deepest = max(tree.candidates(), key=lambda n: n.depth)
    path = deepest.path_to_root()
    assert path[0] is deepest
    assert path[-1] is tree.root
    for child, parent in zip(path, path[1:]):
        assert child.parent is parent


def test_fork_on_control_divergence():
    """bzip2's data branch does not affect the gather's slice, but
    vpr.place's two grid loads produce two distinct trees; within one
    tree, instances with identical slices must form a chain (no fork)."""
    trace = interpret(get_program("gap"), max_instructions=500_000)
    cls = classify_trace(trace)
    prog = trace.program
    bag_pc = next(i.pc for i in prog if i.annotation == "problem:gap-bag")
    tree = build_slice_tree(trace, cls, bag_pc)
    # gap's slice is the same every iteration: expect a pure chain.
    node = tree.root
    while node.children:
        assert len(node.children) == 1
        node = next(iter(node.children.values()))


def test_problem_load_identification_threshold():
    trace = interpret(get_program("gcc"), max_instructions=2_000_000)
    cls = classify_trace(trace)
    pcs = identify_problem_loads(cls)
    total = cls.total_l2_misses
    for pc in pcs:
        assert cls.miss_counts[pc] / total >= 0.02
