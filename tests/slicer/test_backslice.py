"""Tests for backward slicing."""

from repro.frontend import interpret
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.registers import Reg
from repro.slicer import backward_slice


def _gather_loop(n=20):
    """idx walk -> scaled index -> gather: the canonical slice shape."""
    b = ProgramBuilder("gather")
    b.data.alloc("idx", n)
    b.data.fill("idx", list(range(n)))
    b.data.alloc("table", 64)
    b.set_reg(Reg.r2, n * 8)
    b.li(Reg.r1, 0)
    b.label("top")
    b.load(Reg.r3, Reg.r1, base_symbol="idx")
    b.shli(Reg.r4, Reg.r3, 3)
    b.load(Reg.r5, Reg.r4, base_symbol="table")
    b.add(Reg.r6, Reg.r6, Reg.r5)  # consumer, not in the slice
    b.addi(Reg.r1, Reg.r1, 8)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return interpret(b.build())


def test_slice_starts_with_the_seed():
    trace = _gather_loop()
    gather_seq = [d.seq for d in trace if d.is_load][3]
    s = backward_slice(trace, gather_seq)
    assert s[0] == gather_seq


def test_slice_is_descending_and_unique():
    trace = _gather_loop()
    gather_seq = [d.seq for d in trace if d.is_load][-1]
    s = backward_slice(trace, gather_seq)
    assert s == sorted(s, reverse=True)
    assert len(set(s)) == len(s)


def test_slice_follows_address_chain_through_inductions():
    trace = _gather_loop()
    gather_seqs = [d.seq for d in trace if d.is_load and trace[d.seq].pc ==
                   trace[[x.seq for x in trace if x.is_load][1]].pc]
    seq = gather_seqs[5]
    s = backward_slice(trace, seq)
    ops = [trace[x].op for x in s]
    # Must contain the gather, the shift, the idx load, and inductions.
    assert ops[0] is Op.LD
    assert Op.SHLI in ops
    assert ops.count(Op.LD) >= 2
    assert Op.ADDI in ops  # induction unrolling path


def test_slice_excludes_consumers():
    trace = _gather_loop()
    gather_seq = [d.seq for d in trace if d.is_load][-1]
    s = backward_slice(trace, gather_seq)
    add_seqs = {d.seq for d in trace if d.op is Op.ADD}
    assert not (set(s) & add_seqs)


def test_window_truncates_history():
    trace = _gather_loop(n=40)
    gather_seq = [d.seq for d in trace if d.is_load][-1]
    wide = backward_slice(trace, gather_seq, window=100_000, max_insts=64)
    narrow = backward_slice(trace, gather_seq, window=10, max_insts=64)
    assert len(narrow) < len(wide)
    assert min(narrow) >= gather_seq - 10


def test_max_insts_cap():
    trace = _gather_loop(n=40)
    gather_seq = [d.seq for d in trace if d.is_load][-1]
    s = backward_slice(trace, gather_seq, max_insts=5)
    assert len(s) == 5
