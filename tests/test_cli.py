"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_benchmarks(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "vpr.route" in out


def test_run_single_experiment(capsys):
    assert main(["run", "gap", "--target", "E"]) == 0
    out = capsys.readouterr().out
    assert "speedup_pct" in out


def test_run_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "eon"])


def test_rejects_unknown_target():
    with pytest.raises(SystemExit):
        main(["run", "gap", "--target", "X"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
