"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.harness import simcache


@pytest.fixture(autouse=True)
def _isolated_simcache():
    """CLI cache flags mutate process-wide state; restore defaults."""
    yield
    simcache.reset()


def test_list_prints_benchmarks(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "vpr.route" in out


def test_run_single_experiment(capsys):
    assert main(["run", "gap", "--target", "E"]) == 0
    out = capsys.readouterr().out
    assert "speedup_pct" in out


def test_run_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "eon"])


def test_rejects_unknown_target():
    with pytest.raises(SystemExit):
        main(["run", "gap", "--target", "X"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cache_stats_reports_configured_dir(tmp_path, capsys):
    cache_dir = str(tmp_path / "simcache")
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["dir"] == cache_dir
    assert payload["entries"] == 0
    assert payload["schema_version"] == simcache.SCHEMA_VERSION


def test_cache_clear_removes_entries(tmp_path, capsys):
    cache_dir = str(tmp_path / "simcache")
    cache = simcache.SimCache(cache_dir)
    cache.put({"k": 1}, "payload")
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "removed 1 entries" in out
    assert cache.stats()["entries"] == 0


def test_run_with_cache_dir_populates_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "simcache")
    assert main(["run", "gap", "--quiet", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] > 0


def test_no_sim_cache_flag_disables_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "simcache")
    assert main(
        ["run", "gap", "--quiet", "--cache-dir", cache_dir,
         "--no-sim-cache"]
    ) == 0
    capsys.readouterr()
    simcache.reset()
    assert simcache.SimCache(cache_dir).stats()["entries"] == 0


def test_bench_quick_no_grid(capsys):
    assert main(["bench", "--quick", "--no-grid"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["quick"] is True
    benchmarks = [row["benchmark"] for row in payload["simulator"]]
    assert benchmarks == ["gcc", "twolf"]
    assert all(row["cycles_per_sec"] > 0 for row in payload["simulator"])


def test_bench_writes_json(tmp_path, capsys):
    out_file = str(tmp_path / "bench.json")
    assert main(
        ["bench", "--quick", "--no-grid", "--out-file", out_file]
    ) == 0
    capsys.readouterr()
    payload = json.loads(open(out_file).read())
    assert payload["simulator"]


# --------------------------------------------------------------------- #
# Robustness flags
# --------------------------------------------------------------------- #


def test_inject_fault_bad_spec_exits_2(capsys):
    assert main(["run", "gap", "--inject-fault", "worker.nap:0.5"]) == 2
    err = capsys.readouterr().err
    assert "unknown fault site" in err


def test_inject_fault_malformed_prob_exits_2(capsys):
    assert main(["run", "gap", "--inject-fault", "worker.run:lots"]) == 2
    assert "expected SITE:prob" in capsys.readouterr().err


def test_resume_without_out_exits_2(capsys):
    assert main(["figure3", "--resume"]) == 2
    assert "--resume requires --out" in capsys.readouterr().err


def test_manifest_write_fault_is_tolerated(tmp_path, capsys):
    out = str(tmp_path / "artifacts")
    code = main(
        ["run", "gap", "--quiet", "--out", out,
         "--inject-fault", "manifest.write:1.0"]
    )
    assert code == 0  # results printed; provenance failure is non-fatal
    err = capsys.readouterr().err
    assert "could not write artifacts" in err
    import os

    assert not os.path.exists(os.path.join(out, "manifest.json"))


def test_fault_plan_does_not_leak_between_invocations(tmp_path, capsys):
    from repro import faults

    out = str(tmp_path / "artifacts")
    main(["run", "gap", "--quiet", "--out", out,
          "--inject-fault", "manifest.write:1.0"])
    capsys.readouterr()
    assert not faults.site_active("manifest.write")


# --------------------------------------------------------------------- #
# Microarchitectural tracing (repro trace / --trace-window) and the
# HTML run report (repro report).
# --------------------------------------------------------------------- #


def test_trace_window_without_out_exits_2(capsys):
    assert main(["run", "gap", "--trace-window", "0:1000"]) == 2
    assert "--trace-window requires --out" in capsys.readouterr().err


def test_trace_bad_window_exits_2(tmp_path, capsys):
    out = str(tmp_path / "t")
    assert main(["trace", "gap", "--out", out,
                 "--trace-window", "9:5"]) == 2
    assert "bad trace window" in capsys.readouterr().err


def test_trace_then_report_end_to_end(tmp_path, capsys):
    import json
    import os

    from repro.obs import utrace
    from repro.obs.export import validate_chrome_file

    out = str(tmp_path / "t")
    assert main(["trace", "gap", "--out", out,
                 "--trace-window", "0:3000"]) == 0
    captured = capsys.readouterr()
    assert "speedup_pct" in captured.out
    assert "chrome_trace" in captured.err

    manifest = json.load(open(os.path.join(out, "manifest.json")))
    section = manifest["utrace"]
    assert section["n_files"] == 6  # baseline + optimized, 3 files each
    assert section["config"]["window"] == [0, 3000]
    kinds = {f["kind"] for f in section["files"]}
    assert kinds == {"chrome_trace", "kanata_log", "utrace_summary"}
    for record in section["files"]:
        assert os.path.getsize(record["path"]) == record["bytes"]
        if record["kind"] == "chrome_trace":
            validate_chrome_file(record["path"])
        elif record["kind"] == "utrace_summary":
            summary = json.load(open(record["path"]))
            assert summary["energy_audit"]["ok"] is True

    # tracing configuration must not leak out of main()
    assert not utrace.enabled()

    assert main(["report", out]) == 0
    report_path = capsys.readouterr().out.strip()
    assert report_path == os.path.join(out, "report.html")
    doc = open(report_path).read()
    assert "Top-down stall attribution" in doc
    assert "audit ok" in doc


def test_report_missing_dir_exits_2(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope")]) == 2
    assert "no run artifacts" in capsys.readouterr().err


def test_report_requires_some_dir(capsys):
    assert main(["report"]) == 2
    assert "run directory" in capsys.readouterr().err
