"""Tests for functional p-thread spawn expansion."""

import pytest

from repro.cpu.pipeline import simulate
from repro.ddmt import expand_pthreads
from repro.energy import EnergyModel
from repro.frontend import interpret
from repro.pthsel import Target, select_pthreads
from repro.pthsel.framework import BaselineEstimates
from repro.workloads import get_program


@pytest.fixture(scope="module")
def gap_selected():
    program = get_program("gap")
    trace = interpret(program, max_instructions=2_000_000)
    stats = simulate(trace)
    e0 = EnergyModel().evaluate(stats.activity).total_joules
    result = select_pthreads(
        trace,
        BaselineEstimates(stats.ipc, float(stats.cycles), e0),
        target=Target.LATENCY,
    )
    return program, trace, result


def test_one_spawn_per_trigger_occurrence(gap_selected):
    program, trace, result = gap_selected
    augmented = expand_pthreads(program, result.pthreads)
    for pthread in result.pthreads:
        expected = len(trace.occurrences(pthread.trigger_pc))
        assert augmented.spawn_counts[pthread.pthread_id] == expected


def test_augmented_trace_identical_to_plain(gap_selected):
    """P-threads never modify architectural state: the augmented run's
    main-thread trace must equal the unaugmented one."""
    program, trace, result = gap_selected
    augmented = expand_pthreads(program, result.pthreads)
    assert len(augmented.trace) == len(trace)
    assert all(
        a.pc == b.pc and a.addr == b.addr and a.taken == b.taken
        for a, b in zip(augmented.trace, trace)
    )


def test_spawn_addresses_match_future_demand(gap_selected):
    """A p-thread's target-load address must equal the address the main
    thread computes for the covered future instance."""
    program, trace, result = gap_selected
    pthread = max(result.pthreads, key=lambda p: p.size)
    augmented = expand_pthreads(program, [pthread])
    target_pc = pthread.target_pcs[0]
    demand_addrs = {
        d.seq: d.addr for d in trace if d.pc == target_pc
    }
    demand_by_addr = {}
    for seq, addr in demand_addrs.items():
        demand_by_addr.setdefault(addr, []).append(seq)
    matched = 0
    total = 0
    for spawns in augmented.pthreads.spawns_by_trigger.values():
        for spawn in spawns:
            for inst in spawn.insts:
                if inst.is_target:
                    total += 1
                    if any(
                        seq > spawn.trigger_seq
                        for seq in demand_by_addr.get(inst.addr, [])
                    ):
                        matched += 1
    # Near the end of the loop there is no future instance; the bulk must
    # match exactly.
    assert total > 0
    assert matched / total > 0.95


def test_liveins_point_at_or_before_trigger(gap_selected):
    program, trace, result = gap_selected
    augmented = expand_pthreads(program, result.pthreads)
    for spawns in list(augmented.pthreads.spawns_by_trigger.values())[:50]:
        for spawn in spawns:
            for inst in spawn.insts:
                for livein in inst.livein_seqs:
                    assert livein <= spawn.trigger_seq


def test_body_deps_are_earlier_indices(gap_selected):
    program, trace, result = gap_selected
    augmented = expand_pthreads(program, result.pthreads)
    spawns = next(iter(augmented.pthreads.spawns_by_trigger.values()))
    for spawn in spawns:
        for idx, inst in enumerate(spawn.insts):
            assert all(d < idx for d in inst.body_deps)


def test_bodies_have_no_stores_or_branches(gap_selected):
    program, trace, result = gap_selected
    for pthread in result.pthreads:
        for inst in pthread.body:
            assert not inst.op.is_store
            assert not inst.op.is_control
