"""Tests for the dependence-graph forward pass."""


from repro.config import MachineConfig
from repro.critpath.classify import classify_trace
from repro.critpath.graph import ForwardPass, service_latency
from repro.frontend import interpret
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg


def _serial_chain(n=60):
    b = ProgramBuilder("chain")
    b.li(Reg.r1, 1)
    for _ in range(n):
        b.add(Reg.r1, Reg.r1, Reg.r1)
    b.halt()
    return interpret(b.build())


def _parallel_ops(n=60):
    b = ProgramBuilder("par")
    for k in range(n):
        b.li(Reg.r1 + (k % 8), k)
    b.halt()
    return interpret(b.build())


def test_service_latency_levels():
    m = MachineConfig()
    assert service_latency("l1", m) == m.dcache.hit_latency
    assert service_latency("l2", m) == m.dcache.hit_latency + m.l2.hit_latency
    assert service_latency("mem", m) > m.memory_latency


def test_serial_chain_longer_than_parallel():
    serial = ForwardPass(_serial_chain()).run()
    parallel = ForwardPass(_parallel_ops()).run()
    assert serial > parallel


def test_parallel_ops_bounded_by_width():
    n = 120
    time = ForwardPass(_parallel_ops(n)).run()
    # Width-6 dispatch: ~n/6 cycles plus pipeline constants.
    assert time < n / 3


def test_latency_override_shortens_execution():
    b = ProgramBuilder("mem")
    b.data.alloc("t", 8)
    b.li(Reg.r1, b.data.base("t"))
    b.load(Reg.r2, Reg.r1)
    b.add(Reg.r3, Reg.r2, Reg.r2)  # dependent on the load
    b.halt()
    trace = interpret(b.build())
    cls = classify_trace(trace, warm=False)
    fp = ForwardPass(trace, classification=cls)
    base = fp.run()
    load_seq = next(d.seq for d in trace if d.is_load)
    reduced = fp.run({load_seq: 2.0})
    assert reduced < base


def test_mispredicted_branches_add_refill():
    import random
    rng = random.Random(4)
    b = ProgramBuilder("br")
    b.data.alloc("bits", 128)
    b.data.fill("bits", [rng.randint(0, 1) for _ in range(128)])
    b.set_reg(Reg.r2, 128 * 8)
    b.li(Reg.r1, 0)
    b.label("top")
    b.load(Reg.r3, Reg.r1, base_symbol="bits")
    b.beq(Reg.r3, 0, "skip", rhs_is_imm=True)
    b.nop()
    b.label("skip")
    b.addi(Reg.r1, Reg.r1, 8)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    trace = interpret(b.build())
    cls = classify_trace(trace)
    with_mispredicts = ForwardPass(trace, classification=cls).run()
    cls.mispredicted.clear()
    without = ForwardPass(trace, classification=cls).run()
    assert with_mispredicts > without


def test_window_restriction():
    trace = _serial_chain(100)
    full = ForwardPass(trace)
    half = ForwardPass(trace, end=len(trace) // 2)
    assert len(half) == len(trace) // 2
    assert half.run() < full.run()


def test_rerun_is_pure():
    fp = ForwardPass(_serial_chain())
    assert fp.run() == fp.run()
    assert fp.run({0: 50.0}) >= fp.run()
