"""Tests for functional trace classification."""


from repro.critpath.classify import L1, L2, MEM, classify_trace
from repro.frontend import interpret
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg
from repro.workloads import get_program


def _strided_loads(n=64, stride=4096):
    b = ProgramBuilder("stride")
    b.data.alloc("big", (n + 1) * stride // 8)
    b.set_reg(Reg.r2, n)
    b.set_reg(Reg.r5, stride)
    b.li(Reg.r1, 0)
    b.li(Reg.r6, b.data.base("big"))
    b.label("top")
    b.load(Reg.r3, Reg.r6)
    b.add(Reg.r6, Reg.r6, Reg.r5)
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return interpret(b.build())


def test_cold_strided_loads_classified_mem():
    trace = _strided_loads()
    cls = classify_trace(trace, warm=False)
    load_pc = next(d.pc for d in trace if d.is_load)
    assert cls.miss_counts[load_pc] > 30
    assert cls.total_l2_misses > 30


def test_warm_small_footprint_is_l1():
    b = ProgramBuilder("hot")
    b.data.alloc("t", 8)
    b.set_reg(Reg.r2, 50)
    b.li(Reg.r1, 0)
    b.li(Reg.r6, b.data.base("t"))
    b.label("top")
    b.load(Reg.r3, Reg.r6)
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    trace = interpret(b.build())
    cls = classify_trace(trace)
    load_pc = next(d.pc for d in trace if d.is_load)
    counts = cls.service_counts[load_pc]
    assert counts[0] == cls.load_counts[load_pc]  # all L1


def test_merge_aware_classification_on_chase_pair():
    """mcf-style: the second field access of a freshly missed node line
    waits on the in-flight fill and must classify as 'mem', while only
    the initiator counts as a miss."""
    trace = interpret(get_program("mcf"), max_instructions=2_000_000)
    cls = classify_trace(trace)
    prog = trace.program
    cost_pc = next(i.pc for i in prog if i.annotation == "node-cost")
    chase_pc = next(i.pc for i in prog if "chase" in i.annotation)
    # The chase load rarely initiates (the cost load touched its line
    # first) but it waits: its mem service share must be substantial.
    chase_counts = cls.service_counts[chase_pc]
    assert chase_counts[2] > 0.5 * sum(chase_counts)
    assert cls.miss_counts.get(chase_pc, 0) < cls.load_counts[chase_pc] * 0.5
    assert cls.miss_counts.get(cost_pc, 0) > 0


def test_branch_classification_matches_predictability():
    trace = interpret(get_program("bzip2"), max_instructions=2_000_000)
    cls = classify_trace(trace)
    prog = trace.program
    data_branch = next(i.pc for i in prog if i.annotation == "data-branch")
    loop_branch = next(i.pc for i in prog if i.annotation == "loop-branch")
    assert cls.mispredict_rate(data_branch) > 0.05
    assert cls.mispredict_rate(loop_branch) < 0.01


def test_expected_service_latency_weighted():
    trace = _strided_loads()
    cls = classify_trace(trace, warm=False)
    load_pc = next(d.pc for d in trace if d.is_load)
    latencies = {L1: 2.0, L2: 14.0, MEM: 214.0}
    expected = cls.expected_service_latency(load_pc, latencies, default=2.0)
    assert expected > 100.0  # cold strided loads mostly go to memory
