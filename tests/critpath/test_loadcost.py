"""Tests for load cost functions (the Section 4.1 extension)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.critpath.classify import classify_trace
from repro.critpath.loadcost import (
    SAMPLE_POINTS,
    FlatLoadCost,
    LoadCostFunction,
    build_cost_functions,
)
from repro.errors import SelectionError
from repro.frontend import interpret
from repro.slicer import identify_problem_loads
from repro.workloads import get_program


class TestFlatLoadCost:
    def test_identity(self):
        f = FlatLoadCost()
        assert f.gain(37.0) == 37.0

    def test_clamps_negative(self):
        assert FlatLoadCost().gain(-5.0) == 0.0


class TestLoadCostFunction:
    def _fn(self, samples=(10.0, 20.0, 30.0, 40.0)):
        return LoadCostFunction(pc=0, miss_latency=200.0, samples=samples)

    def test_zero_at_zero(self):
        assert self._fn().gain(0.0) == 0.0

    def test_linear_interpolation_between_samples(self):
        f = self._fn()
        # 12.5% of the miss latency = halfway to the 25% sample.
        assert f.gain(25.0) == pytest.approx(5.0)
        # Between 25% and 50%.
        assert f.gain(75.0) == pytest.approx(15.0)

    def test_saturates_beyond_full_latency(self):
        f = self._fn()
        assert f.gain(200.0) == 40.0
        assert f.gain(10_000.0) == 40.0
        assert f.saturation == 40.0

    def test_criticality_fraction(self):
        assert self._fn().criticality == pytest.approx(0.2)

    @given(t=st.floats(min_value=0, max_value=500, allow_nan=False))
    def test_monotone_nondecreasing(self, t):
        f = self._fn()
        assert f.gain(t) <= f.gain(t + 10.0) + 1e-9

    @given(t=st.floats(min_value=0, max_value=500, allow_nan=False))
    def test_bounded_by_saturation(self, t):
        f = self._fn()
        assert 0.0 <= f.gain(t) <= f.saturation + 1e-9


class TestBuildCostFunctions:
    @pytest.fixture(scope="class")
    def gap_profile(self):
        trace = interpret(get_program("gap"), max_instructions=2_000_000)
        cls = classify_trace(trace)
        pcs = identify_problem_loads(cls)
        return trace, cls, pcs

    def test_builds_for_every_problem_load(self, gap_profile):
        trace, cls, pcs = gap_profile
        fns = build_cost_functions(trace, cls, pcs)
        assert set(fns) == set(pcs)

    def test_samples_are_monotone(self, gap_profile):
        trace, cls, pcs = gap_profile
        fns = build_cost_functions(trace, cls, pcs)
        for fn in fns.values():
            assert list(fn.samples) == sorted(fn.samples)
            assert len(fn.samples) == len(SAMPLE_POINTS)

    def test_criticality_below_flat_model(self, gap_profile):
        """Averaged pessimistic/optimistic gains must not exceed the
        cycle-for-cycle assumption (gain per miss <= tolerated latency)."""
        trace, cls, pcs = gap_profile
        fns = build_cost_functions(trace, cls, pcs)
        for fn in fns.values():
            assert fn.saturation <= fn.miss_latency * 1.5

    def test_empty_problem_list(self, gap_profile):
        trace, cls, _ = gap_profile
        assert build_cost_functions(trace, cls, []) == {}

    def test_missing_misses_raises(self, gap_profile):
        trace, cls, _ = gap_profile
        store_pc = next(d.pc for d in trace if d.is_store)
        with pytest.raises(SelectionError):
            build_cost_functions(trace, cls, [store_pc])
