"""End-to-end clean-shutdown test: SIGTERM mid-grid must leave no
orphan workers, a flushed journal, and a manifest marked interrupted;
re-running with ``--resume`` must finish the grid without re-executing
the journaled cells.

Runs the real CLI in a subprocess (its own session, so the whole
process group -- parent plus pool workers -- can be checked for
survivors afterwards).
"""

import contextlib
import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _group_gone(pgid: int) -> bool:
    try:
        os.killpg(pgid, 0)
    except ProcessLookupError:
        return True
    return False


def _cli(out, *extra, env):
    return [
        sys.executable, "-m", "repro", "figure3",
        "--benchmarks", "parser", "--jobs", "2", "--out", out, *extra,
    ]


@pytest.mark.slow
def test_sigterm_mid_grid_then_resume(tmp_path):
    out = str(tmp_path / "artifacts")
    journal_path = os.path.join(out, "journal.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["REPRO_CACHE"] = "0"  # force real work so the grid is mid-flight
    proc = subprocess.Popen(
        _cli(out, env=env),
        env=env,
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    pgid = proc.pid  # == the new session's process-group id
    try:
        # Interrupt only once the grid is demonstrably mid-flight:
        # at least one cell journaled, more still running.
        deadline = time.monotonic() + 120.0
        while not os.path.exists(journal_path):
            assert proc.poll() is None, "grid finished before the signal"
            assert time.monotonic() < deadline, "no cell completed"
            time.sleep(0.1)
        assert proc.poll() is None, "grid finished before the signal"
        proc.send_signal(signal.SIGTERM)
        stderr = proc.communicate(timeout=60)[1]
    except BaseException:
        with contextlib.suppress(ProcessLookupError):
            os.killpg(pgid, signal.SIGKILL)
        raise

    assert proc.returncode == 130, stderr
    assert "interrupted" in stderr

    # The journal was flushed per record and survives the interrupt.
    with open(journal_path) as fh:
        completed = [json.loads(line) for line in fh if line.strip()]
    assert 1 <= len(completed) < 4  # mid-grid: some cells, not all

    # The manifest records the interruption.
    with open(os.path.join(out, "manifest.json")) as fh:
        manifest = json.load(fh)
    assert manifest["interrupted"] is True
    assert manifest["command"] == "figure3"

    # No orphans: every process in the child's group is gone.
    deadline = time.monotonic() + 10.0
    while not _group_gone(pgid):
        assert time.monotonic() < deadline, "orphan worker processes"
        time.sleep(0.2)

    # Resume: only the unfinished cells execute; the run completes.
    result = subprocess.run(
        _cli(out, "--resume", env=env),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert f"resuming: {len(completed)} cell(s)" in result.stderr
    with open(os.path.join(out, "manifest.json")) as fh:
        manifest = json.load(fh)
    assert "interrupted" not in manifest
    assert manifest["degraded"] is False
    assert manifest["n_rows"] == 4  # the full parser grid
