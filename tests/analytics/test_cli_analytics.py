"""End-to-end CLI tests for ``repro analytics`` and auto-ingest.

Auto-ingest at the end of ``--out`` runs is the fleet's data feed, and
``REPRO_ANALYTICS=0`` (the suite-wide default from conftest) must keep
runs bit-identical to the pre-analytics layout -- both sides of that
switch are exercised here through the real CLI entry point.
"""

import json
import os

import pytest

from repro.cli import main
from repro.analytics.store import RunStore


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "store")


def _run_with_out(tmp_path, name="out"):
    out = str(tmp_path / name)
    assert main(["run", "gap", "--target", "E", "--out", out]) == 0
    return out


def test_analytics_off_leaves_no_store(tmp_path, store_dir, capsys,
                                       monkeypatch):
    monkeypatch.setenv("REPRO_ANALYTICS", "0")
    monkeypatch.setenv("REPRO_ANALYTICS_DIR", store_dir)
    _run_with_out(tmp_path)
    captured = capsys.readouterr()
    assert "ingested" not in captured.out + captured.err
    assert not os.path.exists(store_dir)


def test_auto_ingest_on_run_with_out(tmp_path, store_dir, capsys,
                                     monkeypatch):
    monkeypatch.setenv("REPRO_ANALYTICS", "1")
    _run_with_out(tmp_path)
    # The run went through --store-less dispatch: default dir applies,
    # which conftest points at a scratch path; use an explicit store
    # for the assertable case.
    assert main(["run", "gap", "--target", "E",
                 "--out", str(tmp_path / "out2"),
                 "--store", store_dir]) == 0
    assert "ingested" in capsys.readouterr().err
    store = RunStore(store_dir)
    assert store.stats()["ingests"] == 1
    seg = next(iter(store.segments()))
    assert "result" in seg.strings("kind")


def test_analytics_ingest_query_stats_roundtrip(tmp_path, store_dir,
                                                capsys, monkeypatch):
    monkeypatch.setenv("REPRO_ANALYTICS", "0")  # manual ingest only
    out = _run_with_out(tmp_path)
    capsys.readouterr()

    assert main(["analytics", "ingest", out, "--store", store_dir]) == 0
    assert "run_seq 1" in capsys.readouterr().out

    # Re-ingest dedups; --force appends a new segment.
    assert main(["analytics", "ingest", out, "--store", store_dir]) == 0
    assert "skipped" in capsys.readouterr().out
    assert main(["analytics", "ingest", out, "--force",
                 "--store", store_dir]) == 0
    capsys.readouterr()

    assert main(["analytics", "stats", "--store", store_dir]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["segments"] == 2

    assert main(["analytics", "query", "--metric", "speedup_pct",
                 "--agg", "mean", "--group-by", "run_seq,target",
                 "--json", "--store", store_dir]) == 0
    rows = [json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line]
    assert {row["target"] for row in rows} == {"E"}
    assert len(rows) == 2  # one per ingest seq


def test_analytics_query_table_and_accounting(tmp_path, store_dir,
                                              capsys):
    RunStore(store_dir).append_rows(
        [{"benchmark": "gap", "target": "L", "ed2_save_pct": 30.0}],
        run_id="r1",
    )
    assert main(["analytics", "query", "--store", store_dir]) == 0
    captured = capsys.readouterr()
    assert "ed2_save_pct" not in captured.err
    assert "value" in captured.out
    assert "1 input rows" in captured.err


def test_analytics_query_bad_where_exits_2(store_dir, capsys):
    assert main(["analytics", "query", "--where", "nonsense",
                 "--store", store_dir]) == 2
    assert "COL=VALUE" in capsys.readouterr().err


def test_analytics_timeline_ok_and_regressed(tmp_path, store_dir,
                                             capsys):
    store = RunStore(store_dir)
    store.append_rows(
        [{"benchmark": "gap", "target": "L", "ed2_save_pct": 30.0}],
        run_id="r1", commit="aaaa",
    )
    html_path = str(tmp_path / "timeline.html")
    assert main(["analytics", "timeline", "--store", store_dir,
                 "--html", html_path]) == 0
    captured = capsys.readouterr()
    assert "trajectory ok" in captured.err
    payload = json.loads(captured.out)
    assert payload["ok"] is True
    assert "<svg" in open(html_path).read()

    store.append_rows(
        [{"benchmark": "gap", "target": "L", "ed2_save_pct": 2.0}],
        run_id="r2", commit="bbbb",
    )
    assert main(["analytics", "timeline", "--store", store_dir]) == 1
    captured = capsys.readouterr()
    assert ("first regressing metric: gmean_ed2_save_pct[L] at run 2"
            in captured.err)
    assert "r2" in captured.err
    assert "commit bbbb" in captured.err


def test_analytics_timeline_unreadable_baseline_exits_2(store_dir,
                                                        capsys):
    assert main(["analytics", "timeline", "--store", store_dir,
                 "--baseline", "/does/not/exist.json"]) == 2
    assert "unreadable baseline" in capsys.readouterr().err


def test_bench_out_file_auto_ingests(tmp_path, store_dir, capsys,
                                     monkeypatch):
    monkeypatch.setenv("REPRO_ANALYTICS", "1")
    out_file = str(tmp_path / "bench.json")
    assert main(["bench", "--quick", "--no-grid",
                 "--out-file", out_file, "--store", store_dir]) == 0
    captured = capsys.readouterr()
    assert "ingested bench snapshot" in captured.err
    store = RunStore(store_dir)
    seg = next(iter(store.segments()))
    assert set(seg.strings("kind")) == {"bench"}


def test_report_with_store_renders_timeline(tmp_path, store_dir,
                                            capsys, monkeypatch):
    monkeypatch.setenv("REPRO_ANALYTICS", "0")
    out = _run_with_out(tmp_path)
    RunStore(store_dir).ingest_run(out)
    assert main(["report", out, "--store", store_dir]) == 0
    capsys.readouterr()
    doc = open(os.path.join(out, "report.html")).read()
    assert "Timeline" in doc
    assert "trajectory ok" in doc
