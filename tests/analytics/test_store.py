"""Tests for the columnar run store: round-trips, adversarial ingest.

The adversarial cases encode the store's contract -- *lossless for good
rows, loud for bad ones*: torn trailing lines in ``results.jsonl`` are
the expected crash artifact and are silently tolerated, damaged
interior lines and rows stamped with a schema newer than this code are
counted (and warned about via obs), and degraded runs with JobFailure
rows ingest as flagged rows rather than disappearing.
"""

import json
import math
import os

import pytest

from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.frontend import columns
from repro.obs.manifest import RESULTS_SCHEMA_VERSION, RunWriter
from repro.analytics.store import (
    RunStore,
    SEGMENT_FORMAT,
    STORE_SCHEMA_VERSION,
    default_store_dir,
    ingest_enabled,
)


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    columns.set_backend(None)


def _store(tmp_path):
    return RunStore(str(tmp_path / "store"))


def _rows(n=3, failed_at=None):
    rows = []
    for i in range(n):
        row = {"benchmark": f"b{i}", "target": "L",
               "ed2_save_pct": 10.0 + i, "t_sim": 0.5}
        if i == failed_at:
            row = {"benchmark": f"b{i}", "target": "L", "failed": True,
                   "error": "JobFailure", "detail": "boom"}
        rows.append(row)
    return rows


# -- append/load round trip --------------------------------------------- #


def test_append_rows_round_trip(tmp_path):
    store = _store(tmp_path)
    report = store.append_rows(_rows(3), run_id="r1", commit="abc123")
    assert report.rows_ingested == 3
    assert report.run_seq == 1
    assert os.path.exists(report.segment)

    segs = list(store.segments())
    assert len(segs) == 1
    seg = segs[0]
    assert seg.n_rows == 3
    assert seg.strings("benchmark") == ["b0", "b1", "b2"]
    assert seg.strings("kind") == ["result"] * 3
    assert seg.strings("commit") == ["abc123"] * 3
    assert list(seg.column("run_seq")) == [1, 1, 1]
    assert [float(v) for v in seg.column("ed2_save_pct")] == [
        10.0, 11.0, 12.0
    ]


def test_append_dedups_by_run_id(tmp_path):
    store = _store(tmp_path)
    assert store.append_rows(_rows(), run_id="r1").rows_ingested == 3
    again = store.append_rows(_rows(), run_id="r1")
    assert again.skipped
    assert "already ingested" in again.reason
    forced = store.append_rows(_rows(), run_id="r1", force=True)
    assert forced.rows_ingested == 3
    assert forced.run_seq == 2


def test_append_leaves_no_temp_files(tmp_path):
    store = _store(tmp_path)
    store.append_rows(_rows(), run_id="r1")
    leftovers = [
        name
        for root, _, names in os.walk(store.root)
        for name in names
        if name.startswith(".tmp-")
    ]
    assert leftovers == []


def test_missing_column_reads_as_nan(tmp_path):
    store = _store(tmp_path)
    store.append_rows([{"benchmark": "a", "x": 1.0}], run_id="r1")
    store.append_rows([{"benchmark": "b"}], run_id="r2")
    segs = list(store.segments())
    assert segs[1].column("x") is None  # second segment lacks it
    # Query-level NaN fill is exercised in test_query; here the store
    # must simply not have invented a value.


def test_newer_store_index_refused(tmp_path):
    store = _store(tmp_path)
    store.append_rows(_rows(), run_id="r1")
    index = json.loads(open(store.index_path).read())
    index["store_schema"] = STORE_SCHEMA_VERSION + 1
    with open(store.index_path, "w") as fh:
        json.dump(index, fh)
    fresh = RunStore(store.root)
    with pytest.raises(ConfigError, match="newer than this code"):
        fresh.append_rows(_rows(), run_id="r2")


def test_newer_segment_format_skipped(tmp_path):
    store = _store(tmp_path)
    store.append_rows(_rows(), run_id="r1")
    bogus = os.path.join(store.root, "segments", "seg-999999.rcol")
    header = {"magic": "rcol", "format": SEGMENT_FORMAT + 1,
              "n_rows": 1, "columns": [], "dicts": {}, "meta": {}}
    with open(bogus, "wb") as fh:
        fh.write(json.dumps(header).encode() + b"\n")
    segs = list(store.segments())
    assert len(segs) == 1  # the future-format segment is skipped, not fatal
    assert segs[0].n_rows == 3


def test_garbage_segment_skipped(tmp_path):
    store = _store(tmp_path)
    store.append_rows(_rows(), run_id="r1")
    bogus = os.path.join(store.root, "segments", "seg-999998.rcol")
    with open(bogus, "wb") as fh:
        fh.write(b"not a segment at all\n")
    assert len(list(store.segments())) == 1


# -- run-directory ingest ----------------------------------------------- #


def _write_run_dir(tmp_path, degraded=False):
    """A real RunWriter-produced directory (schema stamps included)."""
    out = tmp_path / "run"
    writer = RunWriter(str(out), command="figure3", argv=["figure3"],
                       configs={"machine": MachineConfig()})
    writer.add_row({"benchmark": "gap", "target": "L",
                    "speedup_pct": 12.5, "ed2_save_pct": 30.0})
    if degraded:
        writer.add_row({"benchmark": "gap", "target": "O", "failed": True,
                        "error": "JobFailure", "detail": "worker died"})
    writer.finalize(counters={"harness.simcache.hits": 3,
                              "harness.simcache.misses": 1})
    return out


def test_ingest_run_directory(tmp_path):
    out = _write_run_dir(tmp_path)
    store = _store(tmp_path)
    report = store.ingest_run(str(out))
    assert not report.skipped
    assert report.rows_ingested == 2  # 1 result row + 1 run-level row
    assert report.lines_damaged == 0
    assert report.rows_rejected == 0

    seg = next(iter(store.segments()))
    kinds = seg.strings("kind")
    assert sorted(kinds) == ["result", "run"]
    # The RunWriter stamped the current schema into results.jsonl and
    # the ingester preserved it column-wise.
    i = kinds.index("result")
    assert seg.column("schema")[i] == RESULTS_SCHEMA_VERSION
    # Run-level row carries the simcache hit rate from the manifest.
    j = kinds.index("run")
    assert float(seg.column("cache_hit_rate")[j]) == pytest.approx(0.75)


def test_ingest_degraded_run_flags_rows(tmp_path):
    out = _write_run_dir(tmp_path, degraded=True)
    store = _store(tmp_path)
    report = store.ingest_run(str(out))
    # JobFailure rows ingest as flagged rows -- never dropped.
    assert report.rows_ingested == 3
    assert report.rows_flagged == 1
    seg = next(iter(store.segments()))
    kinds = seg.strings("kind")
    flags = list(seg.column("failed"))
    failed_kinds = [k for k, f in zip(kinds, flags) if f]
    assert failed_kinds == ["result"]


def test_ingest_run_dedups_and_forces(tmp_path):
    out = _write_run_dir(tmp_path)
    store = _store(tmp_path)
    first = store.ingest_run(str(out))
    assert not first.skipped
    again = store.ingest_run(str(out))
    assert again.skipped
    forced = store.ingest_run(str(out), force=True)
    assert not forced.skipped
    assert forced.run_seq == first.run_seq + 1


def test_ingest_tolerates_torn_tail(tmp_path):
    out = _write_run_dir(tmp_path)
    with open(out / "results.jsonl", "a") as fh:
        fh.write('{"benchmark": "gap", "tar')  # crash mid-write
    store = _store(tmp_path)
    report = store.ingest_run(str(out))
    # The torn tail is the expected crash artifact: ignored, not damage.
    assert report.lines_damaged == 0
    assert report.rows_ingested == 2


def test_ingest_counts_interior_damage(tmp_path):
    out = _write_run_dir(tmp_path)
    lines = (out / "results.jsonl").read_text().splitlines()
    lines.insert(0, "}{ not json at all")
    lines.insert(1, '["an array is not a record"]')
    (out / "results.jsonl").write_text("\n".join(lines) + "\n")
    store = _store(tmp_path)
    report = store.ingest_run(str(out))
    assert report.lines_damaged == 2
    assert report.rows_ingested == 2  # good rows are lossless


def test_ingest_rejects_newer_schema_rows(tmp_path):
    out = _write_run_dir(tmp_path)
    with open(out / "results.jsonl", "a") as fh:
        fh.write(json.dumps({"schema": RESULTS_SCHEMA_VERSION + 7,
                             "benchmark": "gap", "target": "E",
                             "speedup_pct": 1.0}) + "\n")
        fh.write(json.dumps({"schema": "bogus", "benchmark": "gap",
                             "target": "P"}) + "\n")
    store = _store(tmp_path)
    report = store.ingest_run(str(out))
    assert report.rows_rejected == 2
    assert report.rows_ingested == 2  # good rows unaffected


def test_ingest_mixed_schema_versions(tmp_path):
    """Pre-stamp (v1) and stamped (v2) artifacts coexist in one store."""
    out = _write_run_dir(tmp_path)
    legacy = tmp_path / "legacy-run"
    os.makedirs(legacy)
    with open(legacy / "results.jsonl", "w") as fh:
        # A v1 artifact: no schema key on any row, no manifest at all.
        fh.write(json.dumps({"benchmark": "mcf", "target": "L",
                             "ed2_save_pct": 20.0}) + "\n")
    store = _store(tmp_path)
    assert store.ingest_run(str(out)).rows_ingested == 2
    report = store.ingest_run(str(legacy))
    assert report.rows_ingested == 1
    assert report.run_id == "legacy-run"  # dirname fallback
    schemas = sorted(
        int(s)
        for seg in store.segments()
        for s, k in zip(seg.column("schema"), seg.strings("kind"))
        if k == "result"
    )
    assert schemas == [1, RESULTS_SCHEMA_VERSION]


def test_ingest_trace_summaries(tmp_path):
    out = _write_run_dir(tmp_path)
    os.makedirs(out / "utrace")
    summary = {"label": "gap.L.optimized", "ipc": 1.5, "cycles": 20000,
               "committed": 30000,
               "stall_fractions": {"retiring": 0.25, "load_miss": 0.75}}
    (out / "utrace" / "gap.L.optimized.abc.summary.json").write_text(
        json.dumps(summary)
    )
    (out / "utrace" / "broken.zz.summary.json").write_text("{ nope")
    store = _store(tmp_path)
    report = store.ingest_run(str(out))
    assert report.rows_ingested == 3  # result + trace + run
    seg = next(iter(store.segments()))
    kinds = seg.strings("kind")
    i = kinds.index("trace")
    assert seg.strings("benchmark")[i] == "gap"
    assert float(seg.column("stall_load_miss")[i]) == pytest.approx(0.75)


def test_ingest_empty_directory_skips(tmp_path):
    empty = tmp_path / "empty"
    os.makedirs(empty)
    report = _store(tmp_path).ingest_run(str(empty))
    assert report.skipped
    assert "no ingestable rows" in report.reason


# -- bench-snapshot ingest ---------------------------------------------- #


def _bench_payload(cycles=100, wall=6.0, rows=2):
    return {
        "date": "20260805",
        "simulator": [
            {"benchmark": "gcc", "cycles": cycles, "committed": 50,
             "cycles_per_sec": 1e6},
            {"benchmark": "twolf", "cycles": cycles * 2, "committed": 80,
             "cycles_per_sec": 2e6},
        ],
        "figure_grid": {"grid": "quick", "rows": rows,
                        "sequential_uncached_wall_s": wall,
                        "cold_wall_s": wall * 0.8, "warm_wall_s": 0.2},
    }


def test_ingest_bench_snapshot(tmp_path):
    path = tmp_path / "BENCH_20260805.json"
    path.write_text(json.dumps(_bench_payload()))
    store = _store(tmp_path)
    report = store.ingest_bench(str(path))
    assert report.rows_ingested == 3  # 2 bench rows + 1 grid row
    assert report.run_id == "BENCH_20260805.json"
    seg = next(iter(store.segments()))
    kinds = seg.strings("kind")
    assert sorted(kinds) == ["bench", "bench", "bench_grid"]
    i = kinds.index("bench_grid")
    assert float(seg.column("rows")[i]) == 2.0
    # Re-ingest by filename dedups (committed history is idempotent).
    assert store.ingest_bench(str(path)).skipped


def test_ingest_path_dispatches(tmp_path):
    out = _write_run_dir(tmp_path)
    bench = tmp_path / "BENCH_X.json"
    bench.write_text(json.dumps(_bench_payload()))
    store = _store(tmp_path)
    assert store.ingest_path(str(out)).rows_ingested == 2
    assert store.ingest_path(str(bench)).rows_ingested == 3


def test_ingest_unreadable_bench_skips(tmp_path):
    path = tmp_path / "BENCH_BAD.json"
    path.write_text("{ nope")
    report = _store(tmp_path).ingest_bench(str(path))
    assert report.skipped
    assert "unreadable" in report.reason


# -- misc --------------------------------------------------------------- #


def test_stats_summarizes_store(tmp_path):
    store = _store(tmp_path)
    store.append_rows(_rows(), run_id="r1")
    store.append_rows(_rows(), run_id="r2")
    stats = store.stats()
    assert stats["segments"] == 2
    assert stats["ingests"] == 2
    assert stats["rows"] == 6
    assert stats["bytes"] > 0
    assert stats["backend"] in ("python", "numpy")


def test_mixed_type_column_stringifies(tmp_path):
    store = _store(tmp_path)
    store.append_rows(
        [{"benchmark": "a", "x": 1.5}, {"benchmark": "b", "x": "oops"}],
        run_id="r1",
    )
    seg = next(iter(store.segments()))
    # Hand-edited artifacts with mixed types must not silently drop
    # values: the column degrades to strings.
    assert seg.strings("x") == ["1.5", "oops"]


def test_none_values_read_as_nan(tmp_path):
    store = _store(tmp_path)
    store.append_rows(
        [{"benchmark": "a", "x": None}, {"benchmark": "b", "x": 2.0}],
        run_id="r1",
    )
    seg = next(iter(store.segments()))
    col = seg.column("x")
    assert math.isnan(float(col[0]))
    assert float(col[1]) == 2.0


def test_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_ANALYTICS", "0")
    assert not ingest_enabled()
    monkeypatch.setenv("REPRO_ANALYTICS", "1")
    assert ingest_enabled()
    monkeypatch.delenv("REPRO_ANALYTICS")
    assert ingest_enabled()
    monkeypatch.setenv("REPRO_ANALYTICS_DIR", "/tmp/somewhere")
    assert default_store_dir() == "/tmp/somewhere"
    monkeypatch.delenv("REPRO_ANALYTICS_DIR")
    assert default_store_dir().endswith("repro-analytics")


def test_ingest_span_rows(tmp_path):
    out = _write_run_dir(tmp_path)
    spans = [
        {"name": "http POST /v1/experiments", "trace_id": "a" * 32,
         "span_id": "1" * 16, "parent_span_id": None,
         "start_s": 100.0, "end_s": 100.5, "process": "client", "tid": 1},
        {"name": "simulate", "trace_id": "a" * 32, "span_id": "2" * 16,
         "parent_span_id": "1" * 16, "start_s": 100.1, "end_s": 100.4,
         "process": "pool-worker-7", "tid": 2},
    ]
    with open(out / "spans.jsonl", "w") as fh:
        for span in spans:
            fh.write(json.dumps(span) + "\n")
        fh.write('{"name": "torn", "start_s": 1')  # crash mid-write
    store = _store(tmp_path)
    report = store.ingest_run(str(out))
    # 1 result + 1 run + 2 spans; the torn tail is tolerated.
    assert report.rows_ingested == 4
    assert report.lines_damaged == 0
    seg = next(iter(store.segments()))
    kinds = seg.strings("kind")
    assert kinds.count("span") == 2
    i = kinds.index("span")
    assert seg.strings("name")[i] == "http POST /v1/experiments"
    assert seg.strings("trace_id")[i] == "a" * 32
    assert seg.strings("process")[i] == "client"
    assert float(seg.column("duration_s")[i]) == pytest.approx(0.5)


def test_ingest_span_interior_damage_is_counted(tmp_path):
    from repro import obs

    out = _write_run_dir(tmp_path)
    (out / "spans.jsonl").write_text(
        "not json\n"
        '{"name": "ok", "trace_id": "t", "span_id": "s",'
        ' "start_s": 1.0, "end_s": 2.0, "process": "cli", "tid": 1}\n'
    )
    store = _store(tmp_path)
    damaged = obs.counters.counter("analytics.ingest.damaged_lines")
    before = damaged.value
    store.ingest_run(str(out))
    # Auxiliary-file damage is counted on the obs counter (the report's
    # lines_damaged covers results.jsonl); the good span still ingests.
    assert damaged.value == before + 1
    seg = next(iter(store.segments()))
    assert seg.strings("kind").count("span") == 1
