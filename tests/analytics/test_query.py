"""Tests for cross-run aggregation: correctness, accounting, speed.

The gmean aggregation must agree with the paper-facing
:func:`repro.harness.report.geometric_mean_pct` (same log-space math),
both backends must agree with each other, and -- the acceptance bar for
the analytics subsystem -- a gmean-ED²-by-objective trend over 100k+
ingested rows must complete in under 2 s on the pure-Python backend.
"""

import math
import random
import time

import pytest

from repro.errors import ConfigError
from repro.frontend import columns
from repro.harness.report import geometric_mean_pct
from repro.analytics.query import (
    Frame,
    aggregate,
    bench_series,
    cache_hit_rate,
    gmean_trend,
    phase_walls,
    stall_drift,
)
from repro.analytics.store import RunStore

HAVE_NUMPY = columns._np is not None


@pytest.fixture(autouse=True)
def _python_backend():
    """Default every test to the deterministic pure-Python backend."""
    columns.set_backend("python")
    yield
    columns.set_backend(None)


def _store(tmp_path):
    return RunStore(str(tmp_path / "store"))


def _seed_store(store, runs=2):
    for run in range(runs):
        rows = [
            {"benchmark": "gap", "target": "L", "ed2_save_pct": 30.0,
             "t_trace": 0.1, "t_analysis": 0.2, "t_sim": 1.0},
            {"benchmark": "mcf", "target": "L", "ed2_save_pct": 10.0,
             "t_trace": 0.1, "t_analysis": 0.3, "t_sim": 2.0},
            {"benchmark": "gap", "target": "E", "ed2_save_pct": 5.0},
            {"benchmark": "vpr", "target": "L", "ed2_save_pct": 99.0,
             "failed": True, "error": "JobFailure"},
        ]
        store.append_rows(rows, run_id=f"r{run}", commit=f"c{run}")


def test_gmean_matches_report_helper(tmp_path):
    store = _store(tmp_path)
    _seed_store(store, runs=1)
    result = aggregate(store, "ed2_save_pct", group_by=("target",))
    by_target = {row["target"]: row for row in result.rows}
    assert by_target["L"]["value"] == pytest.approx(
        geometric_mean_pct([30.0, 10.0])
    )
    assert by_target["L"]["n"] == 2
    assert by_target["E"]["value"] == pytest.approx(
        geometric_mean_pct([5.0])
    )
    # The failed vpr row was skipped and counted, never averaged in.
    assert result.n_failed_skipped == 1


def test_simple_aggregations(tmp_path):
    store = _store(tmp_path)
    store.append_rows(
        [{"benchmark": "a", "x": 1.0}, {"benchmark": "a", "x": 3.0},
         {"benchmark": "b", "x": 5.0}],
        run_id="r1",
    )
    def vals(agg):
        res = aggregate(store, "x", group_by=("benchmark",), agg=agg)
        return {row["benchmark"]: row["value"] for row in res.rows}
    assert vals("mean") == {"a": 2.0, "b": 5.0}
    assert vals("sum") == {"a": 4.0, "b": 5.0}
    assert vals("count") == {"a": 2.0, "b": 1.0}
    assert vals("min") == {"a": 1.0, "b": 5.0}
    assert vals("max") == {"a": 3.0, "b": 5.0}


def test_unknown_aggregation_raises(tmp_path):
    store = _store(tmp_path)
    _seed_store(store, runs=1)
    with pytest.raises(ConfigError, match="unknown aggregation"):
        aggregate(store, "ed2_save_pct", agg="median")


def test_string_metric_raises(tmp_path):
    store = _store(tmp_path)
    _seed_store(store, runs=1)
    with pytest.raises(ConfigError, match="not a numeric column"):
        aggregate(store, "benchmark", group_by=("target",))


def test_where_filters_before_aggregation(tmp_path):
    store = _store(tmp_path)
    _seed_store(store, runs=2)
    result = aggregate(
        store, "ed2_save_pct", group_by=("run_seq",),
        where={"benchmark": "gap", "target": "L"},
    )
    assert [row["n"] for row in result.rows] == [1, 1]
    assert all(
        row["value"] == pytest.approx(30.0) for row in result.rows
    )


def test_include_failed_opts_back_in(tmp_path):
    store = _store(tmp_path)
    store.append_rows(
        [{"benchmark": "a", "x": 10.0},
         {"benchmark": "a", "x": 20.0, "failed": True}],
        run_id="r1",
    )
    skipped = aggregate(store, "x", group_by=("benchmark",), agg="mean")
    assert skipped.rows[0]["value"] == 10.0
    assert skipped.n_failed_skipped == 1
    included = aggregate(store, "x", group_by=("benchmark",), agg="mean",
                         include_failed=True)
    assert included.rows[0]["value"] == 15.0
    assert included.n_failed_skipped == 0


def test_missing_values_skipped_and_counted(tmp_path):
    store = _store(tmp_path)
    store.append_rows([{"benchmark": "a", "x": 2.0},
                       {"benchmark": "a"}], run_id="r1")
    result = aggregate(store, "x", group_by=("benchmark",), agg="mean")
    assert result.rows[0]["value"] == 2.0
    assert result.rows[0]["n"] == 1
    assert result.n_missing_skipped == 1


def test_gmean_saturated_savings_skipped(tmp_path):
    # A >=100% "saving" has no log-space image; it must be counted as
    # unusable rather than crash or poison the mean.
    store = _store(tmp_path)
    store.append_rows([{"benchmark": "a", "x": 50.0},
                       {"benchmark": "a", "x": 100.0}], run_id="r1")
    result = aggregate(store, "x", group_by=("benchmark",), agg="gmean")
    assert result.rows[0]["value"] == pytest.approx(50.0)
    assert result.n_missing_skipped == 1


def test_empty_store_returns_empty_result(tmp_path):
    result = aggregate(_store(tmp_path), "x")
    assert result.rows == []
    assert result.n_input_rows == 0


def test_frame_kind_slicing(tmp_path):
    store = _store(tmp_path)
    store.append_rows(
        [{"benchmark": "a", "x": 1.0},
         {"kind": "trace", "benchmark": "a", "ipc": 1.5}],
        run_id="r1",
    )
    frame = Frame.from_store(store, ["benchmark", "x"], kind="result")
    assert frame.n_rows == 1
    assert frame.strings["benchmark"] == ["a"]
    assert float(frame.numeric["x"][0]) == 1.0
    trace = Frame.from_store(store, ["ipc"], kind="trace")
    assert frame.n_rows == trace.n_rows == 1


def test_frame_nan_fills_missing_columns(tmp_path):
    store = _store(tmp_path)
    store.append_rows([{"benchmark": "a", "x": 1.0}], run_id="r1")
    store.append_rows([{"benchmark": "b"}], run_id="r2")
    frame = Frame.from_store(store, ["x"])
    assert frame.n_rows == 2
    assert float(frame.numeric["x"][0]) == 1.0
    assert math.isnan(float(frame.numeric["x"][1]))


def test_named_queries(tmp_path):
    store = _store(tmp_path)
    _seed_store(store, runs=2)
    store.append_rows(
        [{"kind": "trace", "benchmark": "gap", "stall_load_miss": 0.6,
          "stall_retiring": 0.4},
         {"kind": "run", "cache_hit_rate": 0.75, "wall_s": 3.0}],
        run_id="extra",
    )
    trend = gmean_trend(store)
    assert {row["target"] for row in trend.rows} == {"L", "E"}
    drift = stall_drift(store)
    assert set(drift) == {"stall_load_miss", "stall_retiring"}
    assert drift["stall_load_miss"].rows[0]["value"] == 0.6
    hits = cache_hit_rate(store)
    assert hits.rows[0]["value"] == 0.75
    walls = phase_walls(store)
    assert walls["t_sim"].rows[0]["value"] == pytest.approx(3.0)


def test_bench_series(tmp_path):
    store = _store(tmp_path)
    store.append_rows(
        [{"kind": "bench", "benchmark": "gcc", "cycles_per_sec": 1e6},
         {"kind": "bench", "benchmark": "twolf", "cycles_per_sec": 2e6}],
        run_id="BENCH_1",
    )
    result = bench_series(store)
    assert {row["benchmark"]: row["value"] for row in result.rows} == {
        "gcc": 1e6, "twolf": 2e6
    }


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_backends_agree(tmp_path):
    store = _store(tmp_path)
    random.seed(11)
    rows = [
        {"benchmark": f"b{i % 7}", "target": "LEP"[i % 3],
         "ed2_save_pct": random.uniform(-10, 60),
         "failed": (i % 13 == 0)}
        for i in range(500)
    ]
    store.append_rows(rows, run_id="r1")

    def run():
        res = aggregate(store, "ed2_save_pct", group_by=("target",))
        return (
            [(r["target"], r["n"]) for r in res.rows],
            [r["value"] for r in res.rows],
            res.n_failed_skipped,
        )

    columns.set_backend("python")
    py_keys, py_vals, py_failed = run()
    columns.set_backend("numpy")
    RunStore(store.root)  # fresh instance: no cross-backend seg cache
    np_keys, np_vals, np_failed = run()
    assert py_keys == np_keys
    assert py_failed == np_failed
    for a, b in zip(py_vals, np_vals):
        assert a == pytest.approx(b, rel=1e-12)


def test_gmean_100k_rows_under_two_seconds(tmp_path):
    """Acceptance bar: ED² gmean by objective over >=100k rows < 2 s,
    pure-Python backend (no NumPy assist)."""
    store = _store(tmp_path)
    random.seed(7)
    targets = ("O", "L", "E", "P")
    for run in range(10):
        rows = [
            {"benchmark": f"b{i % 400}", "target": targets[i % 4],
             "ed2_save_pct": random.uniform(-5.0, 60.0)}
            for i in range(10_000)
        ]
        store.append_rows(rows, run_id=f"run{run}", commit=f"c{run:03d}")
    assert store.stats()["rows"] == 100_000

    start = time.perf_counter()
    trend = gmean_trend(store)
    elapsed = time.perf_counter() - start
    assert trend.n_input_rows == 100_000
    assert len(trend.rows) == 10 * len(targets)
    assert all(row["n"] == 2_500 for row in trend.rows)
    assert elapsed < 2.0, f"gmean over 100k rows took {elapsed:.2f}s"
