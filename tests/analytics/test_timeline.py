"""Tests for the regression timeline: disciplines, attribution, SVG.

The timeline generalizes ``benchmarks/check_regression.py`` to the
whole ingested history, so the disciplines must match the
single-baseline checker exactly: determinism metrics break on any
difference, throughput floors, wall-clock ceilings, sub-second walls
tracked but never banded, and grid walls compared only within one grid
shape.
"""

import json
from html.parser import HTMLParser

import pytest

from repro.frontend import columns
from repro.analytics.store import RunStore
from repro.analytics.timeline import (
    Series,
    build_timeline,
    load_baseline,
    render_phase_stack_svg,
    render_series_svg,
    render_timeline_html,
    timeline_section_html,
)


@pytest.fixture(autouse=True)
def _python_backend():
    columns.set_backend("python")
    yield
    columns.set_backend(None)


def _store(tmp_path):
    return RunStore(str(tmp_path / "store"))


def _ingest_results(store, run, gmean_value):
    rows = [
        {"benchmark": b, "target": "L", "ed2_save_pct": gmean_value,
         "t_trace": 0.1, "t_analysis": 0.2, "t_sim": 1.0}
        for b in ("gap", "mcf")
    ]
    store.append_rows(rows, run_id=f"run{run}", commit=f"c{run:07d}abcde")


def _ingest_bench(store, run, cycles=1000, cps=1e6, wall=6.0, rows=2):
    store.append_rows(
        [
            {"kind": "bench", "benchmark": "gcc", "cycles": cycles,
             "committed": 500, "cycles_per_sec": cps},
            {"kind": "bench_grid", "rows": rows,
             "sequential_uncached_wall_s": wall, "cold_wall_s": wall,
             "warm_wall_s": 0.2},
        ],
        run_id=f"BENCH_{run}.json",
    )


# -- Series.check disciplines ------------------------------------------- #


def test_exact_discipline_breaks_on_any_difference():
    s = Series("cycles", [(1, 100.0), (2, 100.0), (3, 101.0)],
               discipline="exact", baseline=100.0)
    s.check(tolerance=0.5)
    assert not s.ok
    assert s.first_bad_seq == 3
    assert s.bound == 100.0


def test_floor_discipline_allows_band():
    s = Series("tput", [(1, 100.0), (2, 60.0), (3, 49.0)],
               discipline="floor", baseline=100.0)
    s.check(tolerance=0.5)
    assert s.first_bad_seq == 3  # 60 >= 50 passes, 49 < 50 trips
    assert s.bound == pytest.approx(50.0)


def test_ceiling_discipline():
    s = Series("wall", [(1, 10.0), (2, 14.9), (3, 15.1)],
               discipline="ceiling", baseline=10.0)
    s.check(tolerance=0.5)
    assert s.first_bad_seq == 3
    assert s.bound == pytest.approx(15.0)


def test_self_basing_on_first_point():
    s = Series("x", [(1, 20.0), (2, 9.0)], discipline="floor")
    s.check(tolerance=0.5)
    assert s.baseline == 20.0
    assert s.first_bad_seq == 2  # 9 < 20 * 0.5


# -- build_timeline ----------------------------------------------------- #


def test_timeline_ok_on_stable_history(tmp_path):
    store = _store(tmp_path)
    for run in range(3):
        _ingest_results(store, run, gmean_value=30.0)
    report = build_timeline(store, tolerance=0.5)
    assert report.ok
    assert report.first_regression is None
    names = [s.name for s in report.series]
    assert "gmean_ed2_save_pct[L]" in names
    assert set(report.phase_series) == {"t_trace", "t_analysis", "t_sim"}


def test_timeline_attributes_first_regressing_run(tmp_path):
    store = _store(tmp_path)
    _ingest_results(store, 0, gmean_value=30.0)
    _ingest_results(store, 1, gmean_value=28.0)  # inside the band
    _ingest_results(store, 2, gmean_value=5.0)   # collapses
    report = build_timeline(store, tolerance=0.5)
    assert not report.ok
    first = report.first_regression
    assert first["metric"] == "gmean_ed2_save_pct[L]"
    assert first["run_seq"] == 3
    assert first["run_id"] == "run2"
    assert first["commit"] == "c0000002abcd"  # truncated to 12 chars
    assert first["discipline"] == "floor"
    assert first["value"] == pytest.approx(5.0)


def test_timeline_bench_determinism_vs_baseline(tmp_path):
    store = _store(tmp_path)
    _ingest_bench(store, 0, cycles=1000)
    _ingest_bench(store, 1, cycles=1001)  # single-cycle drift
    baseline = {"simulator": [{"benchmark": "gcc", "cycles": 1000,
                               "committed": 500,
                               "cycles_per_sec": 1e6}]}
    report = build_timeline(store, baseline=baseline, tolerance=0.5)
    bad = [s for s in report.series if not s.ok]
    assert [s.name for s in bad] == ["bench_cycles[gcc]"]
    assert bad[0].first_bad_seq == 2
    assert bad[0].discipline == "exact"


def test_timeline_throughput_floor_vs_baseline(tmp_path):
    store = _store(tmp_path)
    _ingest_bench(store, 0, cps=1e6)
    _ingest_bench(store, 1, cps=0.4e6)  # below the 50% floor
    baseline = {"simulator": [{"benchmark": "gcc", "cycles": 1000,
                               "committed": 500,
                               "cycles_per_sec": 1e6}]}
    report = build_timeline(store, baseline=baseline, tolerance=0.5)
    bad = {s.name for s in report.series if not s.ok}
    assert bad == {"bench_cycles_per_sec[gcc]"}


def test_timeline_grid_walls_split_by_shape(tmp_path):
    """A quick 2-row grid and a full 27-row grid never cross-compare."""
    store = _store(tmp_path)
    _ingest_bench(store, 0, wall=6.0, rows=2)
    _ingest_bench(store, 1, wall=110.0, rows=27)  # different shape
    baseline = {
        "simulator": [],
        "figure_grid": {"rows": 2, "sequential_uncached_wall_s": 6.0,
                        "cold_wall_s": 6.0},
    }
    report = build_timeline(store, baseline=baseline, tolerance=0.5)
    assert report.ok  # 110 s on 27 rows is not a regression of 6 s on 2
    names = {s.name for s in report.series}
    assert "grid_cold_wall_s[rows=2]" in names
    assert "grid_cold_wall_s[rows=27]" in names
    banded = {
        s.name: s.bound for s in report.series if s.bound is not None
    }
    assert banded["grid_cold_wall_s[rows=2]"] == pytest.approx(9.0)


def test_timeline_subsecond_walls_tracked_not_banded(tmp_path):
    store = _store(tmp_path)
    _ingest_bench(store, 0, wall=6.0)   # warm wall is 0.2 s in both
    _ingest_bench(store, 1, wall=6.0)
    report = build_timeline(store, tolerance=0.5)
    warm = [s for s in report.series
            if s.name.startswith("grid_warm_wall_s")]
    assert len(warm) == 1
    assert warm[0].bound is None  # noise-dominated: never banded
    assert warm[0].ok


def test_timeline_to_dict_is_json_serializable(tmp_path):
    store = _store(tmp_path)
    _ingest_results(store, 0, gmean_value=30.0)
    _ingest_results(store, 1, gmean_value=5.0)
    report = build_timeline(store, tolerance=0.5)
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is False
    assert payload["first_regression"]["metric"].startswith("gmean_")
    series = {s["name"]: s for s in payload["series"]}
    points = series["gmean_ed2_save_pct[L]"]["points"]
    assert points[0]["run_id"] == "run0"


def test_load_baseline(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps({"simulator": []}))
    assert load_baseline(str(path)) == {"simulator": []}


# -- rendering ---------------------------------------------------------- #

_VOIDS = {"meta", "br", "hr", "img", "input", "link"}


class _Checker(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOIDS:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"mismatched </{tag}>")
        else:
            self.stack.pop()


def _assert_well_formed(doc):
    checker = _Checker()
    checker.feed(doc)
    assert checker.errors == []
    assert checker.stack == []


def test_render_series_svg_marks_bad_points():
    s = Series("bench_cycles[g<cc>]", [(1, 100.0), (2, 150.0)],
               discipline="ceiling", baseline=100.0)
    s.check(tolerance=0.2)
    svg = render_series_svg(s, {1: {"run_id": "a"}, 2: {"run_id": "b"}})
    assert svg.startswith("<svg")
    assert "#c62828" in svg      # the out-of-band point is red
    assert "g&lt;cc&gt;" in svg  # labels escape
    assert "<rect" in svg        # the tolerance band is drawn
    _assert_well_formed(svg)


def test_render_series_svg_empty():
    s = Series("x", [])
    assert "no points" in render_series_svg(s, {})


def test_render_phase_stack_svg():
    svg = render_phase_stack_svg({
        "t_trace": [(1, 1.0), (2, 2.0)],
        "t_sim": [(1, 3.0), (2, 4.0)],
    })
    assert svg.count("<rect") == 4
    assert "run 2 sim: 4.00s" in svg
    _assert_well_formed(svg)
    assert "(no phase timings" in render_phase_stack_svg({})


def test_timeline_section_html_states(tmp_path):
    store = _store(tmp_path)
    empty = build_timeline(store)
    assert "analytics store is empty" in timeline_section_html(empty)

    _ingest_results(store, 0, gmean_value=30.0)
    ok = build_timeline(store, tolerance=0.5)
    html_ok = timeline_section_html(ok)
    assert "trajectory ok" in html_ok
    _assert_well_formed(html_ok)

    _ingest_results(store, 1, gmean_value=1.0)
    bad = build_timeline(RunStore(store.root), tolerance=0.5)
    html_bad = timeline_section_html(bad)
    assert "first regression" in html_bad
    assert "run1" in html_bad
    _assert_well_formed(html_bad)


def test_render_timeline_html_standalone(tmp_path):
    store = _store(tmp_path)
    _ingest_results(store, 0, gmean_value=30.0)
    doc = render_timeline_html(build_timeline(store))
    assert doc.startswith("<!DOCTYPE html>")
    assert "<script" not in doc  # no-JS, self-contained
    _assert_well_formed(doc)
