"""Tests for the workload kernel emitters and data initializers."""

import random

import pytest

from repro.errors import WorkloadError
from repro.isa.builder import WORD_BYTES, ProgramBuilder
from repro.isa.opcodes import Op
from repro.workloads.generators import (
    RegAlloc,
    emit_compute_chain,
    emit_lcg_advance,
    emit_lcg_index,
    init_pointer_ring,
    init_random_words,
    init_record_array,
    loop_footer,
    loop_header,
)


class TestRegAlloc:
    def test_sequential_allocation(self):
        ra = RegAlloc()
        assert ra.one() == 1
        assert ra.take(3) == [2, 3, 4]

    def test_exhaustion_raises(self):
        ra = RegAlloc()
        ra.take(29)
        with pytest.raises(WorkloadError, match="exhausted"):
            ra.take(2)


class TestDataInitializers:
    def test_random_words_in_range(self):
        b = ProgramBuilder("t")
        base = init_random_words(b, "r", 64, random.Random(1), bits=16)
        values = [b.data.image[base + i * WORD_BYTES] for i in range(64)]
        assert all(0 <= v < 2**16 for v in values)

    def test_pointer_ring_is_one_cycle(self):
        b = ProgramBuilder("t")
        n = 32
        head = init_pointer_ring(b, "ring", n, 2, random.Random(2))
        visited = set()
        node = head
        for _ in range(n):
            assert node not in visited
            visited.add(node)
            node = b.data.image[node]
        assert node == head  # closes into a single Hamiltonian cycle
        assert len(visited) == n

    def test_pointer_ring_needs_two_words(self):
        b = ProgramBuilder("t")
        with pytest.raises(WorkloadError):
            init_pointer_ring(b, "ring", 8, 1, random.Random(3))

    def test_record_array_fields(self):
        b = ProgramBuilder("t")
        base = init_record_array(b, "recs", 10, 4, [3, 100], random.Random(4))
        for i in range(10):
            assert 0 <= b.data.image[base + i * 32] < 3
            assert 0 <= b.data.image[base + i * 32 + 8] < 100

    def test_record_array_too_many_fields(self):
        b = ProgramBuilder("t")
        with pytest.raises(WorkloadError):
            init_record_array(b, "recs", 4, 1, [3, 3], random.Random(5))


class TestEmitters:
    def test_lcg_advance_is_two_insts(self):
        b = ProgramBuilder("t")
        emit_lcg_advance(b, 1, 2)
        assert b.here == 2

    def test_lcg_index_produces_aligned_bounded_offsets(self):
        from repro.frontend import interpret
        from repro.isa.registers import Reg
        from repro.workloads.generators import LCG_MULT

        b = ProgramBuilder("t")
        b.set_reg(Reg.r1, 12345)
        b.set_reg(Reg.r2, LCG_MULT)
        b.set_reg(Reg.r4, 100)
        b.data.alloc("probe", 1 << 10)
        b.li(Reg.r5, 0)
        b.label("top")
        emit_lcg_advance(b, Reg.r1, Reg.r2)
        emit_lcg_index(b, Reg.r1, Reg.r3, 10)
        b.load(Reg.r6, Reg.r3, base_symbol="probe")
        b.addi(Reg.r5, Reg.r5, 1)
        b.blt(Reg.r5, Reg.r4, "top")
        b.halt()
        trace = interpret(b.build())
        base = b.data.base("probe")
        offsets = {d.addr - base for d in trace if d.is_load}
        assert all(0 <= off < (1 << 10) * 8 for off in offsets)
        assert all(off % 8 == 0 for off in offsets)
        assert len(offsets) > 50  # well spread

    def test_compute_chain_dependent_is_serial(self):
        b = ProgramBuilder("t")
        emit_compute_chain(b, [1, 2], 6, dependent=True)
        prog_ops = [i for i in b._insts]
        assert all(i.rd == 1 for i in prog_ops)

    def test_compute_chain_independent_rotates(self):
        b = ProgramBuilder("t")
        emit_compute_chain(b, [1, 2, 3], 6, dependent=False)
        dests = {i.rd for i in b._insts}
        assert dests == {1, 2, 3}

    def test_compute_chain_needs_registers(self):
        b = ProgramBuilder("t")
        with pytest.raises(WorkloadError):
            emit_compute_chain(b, [], 4)

    def test_loop_header_footer_roundtrip(self):
        from repro.frontend import interpret
        from repro.isa.registers import Reg

        b = ProgramBuilder("t")
        b.set_reg(Reg.r2, 7)
        top = loop_header(b, "k")
        b.nop()
        loop_footer(b, top, Reg.r1, Reg.r2)
        b.halt()
        trace = interpret(b.build())
        assert sum(1 for d in trace if d.op is Op.NOP) == 7
