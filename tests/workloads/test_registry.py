"""Workload suite integrity tests."""

import pytest

from repro.errors import WorkloadError
from repro.frontend import interpret
from repro.isa.opcodes import Op
from repro.workloads import benchmark_names, get_program, input_set


@pytest.fixture(scope="module", params=benchmark_names())
def traced(request):
    prog = get_program(request.param)
    return prog, interpret(prog, max_instructions=2_000_000)


def test_benchmark_names_count():
    assert len(benchmark_names()) == 9  # the paper's nine runs


def test_unknown_benchmark_raises():
    with pytest.raises(WorkloadError, match="unknown benchmark"):
        get_program("eon")


def test_unknown_input_raises():
    with pytest.raises(WorkloadError, match="unknown input set"):
        get_program("gcc", "bogus")


def test_every_benchmark_halts(traced):
    _, trace = traced
    assert trace.insts[-1].op is Op.HALT


def test_every_benchmark_has_annotated_problem_load(traced):
    prog, _ = traced
    problems = [i for i in prog if i.annotation.startswith("problem:")]
    assert problems, f"{prog.name} declares no problem load"
    assert all(i.op is Op.LD for i in problems)


def test_dynamic_size_in_simulation_budget(traced):
    _, trace = traced
    assert 50_000 <= len(trace) <= 400_000


def test_problem_loads_have_spread_addresses(traced):
    """Problem loads must roam a large working set (that's what makes
    them miss in a 256KB L2)."""
    prog, trace = traced
    problem_pcs = {i.pc for i in prog if i.annotation.startswith("problem:")}
    addrs = {d.addr for d in trace if d.pc in problem_pcs}
    lines = {a >> 6 for a in addrs}
    assert len(lines) > 2000, f"{prog.name}: only {len(lines)} distinct lines"


def test_train_and_ref_differ(traced):
    prog, _ = traced
    name = prog.name.rsplit(".", 1)[0]
    ref = get_program(name, "ref")
    assert ref.name.endswith(".ref")
    assert ref.data != prog.data  # different seeds -> different images


def test_inputs_are_deterministic():
    a = get_program("gcc", "train")
    b = get_program("gcc", "train")
    assert a.data == b.data
    assert [str(i) for i in a] == [str(i) for i in b]


def test_bzip2_ref_is_less_memory_critical():
    """The Section 5.3 observation: bzip2's ref input has a smaller
    working set than train."""
    train = get_program("bzip2", "train")
    ref = get_program("bzip2", "ref")
    train_table = max(a for a in train.data) - min(a for a in train.data)
    ref_table = max(a for a in ref.data) - min(a for a in ref.data)
    assert ref_table < train_table


def test_input_set_helper_rejects_garbage():
    with pytest.raises(WorkloadError):
        input_set("validation")
