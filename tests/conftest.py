"""Suite-wide fixtures: keep tests hermetic w.r.t. persistent state.

The simulation cache defaults to ``~/.cache/repro-sim``; tests must
neither read stale entries from a developer's cache nor write into it,
so caching is disabled process-wide here.  Tests that exercise the
cache itself opt back in with ``simcache.configure(cache_dir=tmp)``
(an explicit directory re-enables caching) and restore the default
state afterwards.

The analytics run store gets the same treatment: auto-ingest is
disabled (``REPRO_ANALYTICS=0``) so CLI tests leave run artifacts
bit-identical to the pre-analytics layout, and the default store
location is pointed at a per-process scratch path so the Timeline
report section never reads a developer's real store.  Analytics tests
opt in with explicit store directories (``RunStore(tmp)``).
"""

import os
import tempfile

os.environ.setdefault("REPRO_CACHE", "0")
os.environ.setdefault("REPRO_ANALYTICS", "0")
os.environ.setdefault(
    "REPRO_ANALYTICS_DIR",
    os.path.join(
        tempfile.gettempdir(), f"repro-analytics-tests-{os.getpid()}"
    ),
)
