"""Suite-wide fixtures: keep tests hermetic w.r.t. the persistent cache.

The simulation cache defaults to ``~/.cache/repro-sim``; tests must
neither read stale entries from a developer's cache nor write into it,
so caching is disabled process-wide here.  Tests that exercise the
cache itself opt back in with ``simcache.configure(cache_dir=tmp)``
(an explicit directory re-enables caching) and restore the default
state afterwards.
"""

import os

os.environ.setdefault("REPRO_CACHE", "0")
