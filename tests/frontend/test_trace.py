"""Tests for trace containers and queries."""

import pytest

from repro.frontend import interpret
from repro.frontend.trace import TraceWindow
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import OpClass
from repro.isa.registers import Reg


@pytest.fixture(scope="module")
def mixed_trace():
    b = ProgramBuilder("mixed")
    b.data.alloc("buf", 16)
    b.set_reg(Reg.r2, 12)
    b.li(Reg.r1, 0)
    b.label("top")
    b.load(Reg.r3, Reg.r1, base_symbol="buf")
    b.add(Reg.r4, Reg.r4, Reg.r3)
    b.store(Reg.r4, Reg.r1, base_symbol="buf")
    b.addi(Reg.r1, Reg.r1, 8)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return interpret(b.build())


def test_count_by_class(mixed_trace):
    counts = mixed_trace.count_by_class()
    assert counts[OpClass.LOAD] == 2
    assert counts[OpClass.STORE] == 2
    assert counts[OpClass.BRANCH] == 2


def test_dynamic_loads_by_pc(mixed_trace):
    by_pc = mixed_trace.dynamic_loads_by_pc()
    (pc, seqs), = by_pc.items()
    assert len(seqs) == 2
    assert all(mixed_trace[s].is_load for s in seqs)


def test_static_of(mixed_trace):
    dyn = next(d for d in mixed_trace if d.is_load)
    static = mixed_trace.static_of(dyn)
    assert static.pc == dyn.pc
    assert static.op is dyn.op


def test_window_bounds_and_iteration(mixed_trace):
    window = TraceWindow(mixed_trace, 2, 6)
    assert len(window) == 4
    assert [d.seq for d in window] == [2, 3, 4, 5]
    assert window.contains(3)
    assert not window.contains(6)


def test_window_rejects_bad_bounds(mixed_trace):
    with pytest.raises(IndexError):
        TraceWindow(mixed_trace, 5, 2)
    with pytest.raises(IndexError):
        TraceWindow(mixed_trace, 0, len(mixed_trace) + 1)


def test_repr_is_stable(mixed_trace):
    dyn = mixed_trace[0]
    assert f"seq={dyn.seq}" in repr(dyn)
