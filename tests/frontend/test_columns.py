"""Tests for the columnar trace storage and backend selection."""

from array import array

import pytest

from repro.errors import ConfigError
from repro.frontend import columns
from repro.frontend.columns import (
    TraceColumns,
    grow_int64,
    grow_int8,
    int64_buffer,
    int8_buffer,
)

HAVE_NUMPY = columns._np is not None


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    columns.set_backend(None)


def test_int64_buffer_prefills():
    assert list(int64_buffer(4)) == [0, 0, 0, 0]
    assert list(int64_buffer(3, fill=-1)) == [-1, -1, -1]
    with pytest.raises(ValueError):
        int64_buffer(2, fill=7)


def test_int8_buffer_zeroed():
    assert list(int8_buffer(5)) == [0] * 5


def test_grow_helpers_extend_with_fill():
    col = int64_buffer(2, fill=-1)
    grow_int64(col, 3, fill=-1)
    assert list(col) == [-1] * 5
    grow_int64(col, 2)
    assert list(col)[-2:] == [0, 0]
    small = int8_buffer(1)
    grow_int8(small, 2)
    assert list(small) == [0, 0, 0]


def test_env_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_NUMPY", "0")
    columns.set_backend(None)
    assert columns.backend() == "python"
    monkeypatch.delenv("REPRO_NUMPY")
    columns.set_backend(None)
    expected = "numpy" if HAVE_NUMPY else "python"
    assert columns.backend() == expected


def test_env_numpy_forced_without_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NUMPY", "1")
    columns.set_backend(None)
    if HAVE_NUMPY:
        assert columns.backend() == "numpy"
    else:
        with pytest.raises(ConfigError):
            columns.backend()


def test_set_backend_rejects_unknown():
    with pytest.raises(ConfigError):
        columns.set_backend("fortran")


def _sealed(length, backend):
    columns.set_backend(backend)
    pc = array("q", range(8))
    op = array("b", [1] * 8)
    s1 = array("q", [-1] * 8)
    s2 = array("q", [-1] * 8)
    addr = array("q", [-1] * 8)
    taken = array("b", [0] * 8)
    nxt = array("q", range(1, 9))
    return TraceColumns.seal(pc, op, s1, s2, addr, taken, nxt, length)


@pytest.mark.parametrize(
    "backend",
    ["python"] + (["numpy"] if HAVE_NUMPY else []),
)
def test_seal_truncates_and_converts(backend):
    cols = _sealed(5, backend)
    assert len(cols) == 5
    assert cols.backend == backend
    assert list(cols.pc) == [0, 1, 2, 3, 4]
    assert list(cols.addr) == [-1] * 5
    assert list(cols.next_pc) == [1, 2, 3, 4, 5]


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
def test_backends_hold_identical_values():
    a = _sealed(6, "python")
    b = _sealed(6, "numpy")
    for name in ("pc", "op_code", "src1", "src2", "addr", "taken", "next_pc"):
        assert list(getattr(a, name)) == list(getattr(b, name))
