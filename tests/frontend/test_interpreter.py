"""Tests for the functional interpreter and trace dataflow."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.frontend import interpret
from repro.frontend.trace import NO_PRODUCER
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.registers import Reg


def _counting_loop(n):
    b = ProgramBuilder("count")
    b.set_reg(Reg.r2, n)
    b.li(Reg.r1, 0)
    b.label("top")
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return b.build()


def test_counting_loop_executes_n_iterations():
    trace = interpret(_counting_loop(10))
    addis = [d for d in trace if d.op is Op.ADDI]
    assert len(addis) == 10


def test_trace_ends_with_halt():
    trace = interpret(_counting_loop(3))
    assert trace.insts[-1].op is Op.HALT


def test_runaway_program_raises():
    b = ProgramBuilder("spin")
    b.label("top")
    b.jump("top")
    with pytest.raises(ExecutionError, match="did not halt"):
        interpret(b.build(), max_instructions=100)


def test_runaway_truncates_when_halt_not_required():
    b = ProgramBuilder("spin")
    b.label("top")
    b.jump("top")
    trace = interpret(b.build(), max_instructions=50, require_halt=False)
    assert len(trace) == 50


def test_producer_links_point_to_last_writer():
    b = ProgramBuilder("dataflow")
    b.li(Reg.r1, 5)       # seq 0
    b.li(Reg.r2, 7)       # seq 1
    b.add(Reg.r3, Reg.r1, Reg.r2)  # seq 2
    b.add(Reg.r4, Reg.r3, Reg.r3)  # seq 3
    b.halt()
    trace = interpret(b.build())
    assert (trace[2].src1_seq, trace[2].src2_seq) == (0, 1)
    assert (trace[3].src1_seq, trace[3].src2_seq) == (2, 2)


def test_initial_register_values_have_no_producer():
    b = ProgramBuilder("init")
    b.set_reg(Reg.r1, 42)
    b.mov(Reg.r2, Reg.r1)
    b.halt()
    trace = interpret(b.build())
    assert trace[0].src1_seq == NO_PRODUCER


def test_store_load_roundtrip_through_memory():
    b = ProgramBuilder("mem")
    buf = b.data.alloc("buf", 2)
    b.li(Reg.r1, 1234)
    b.li(Reg.r2, buf)
    b.store(Reg.r1, Reg.r2, imm=8)
    b.load(Reg.r3, Reg.r2, imm=8)
    b.bne(Reg.r3, Reg.r1, "fail")
    b.halt()
    b.label("fail")
    b.nop()
    b.halt()
    trace = interpret(b.build())
    # The BNE must fall through (values equal): trace ends at first halt.
    assert trace.insts[-1].op is Op.HALT
    assert not trace[4].taken
    assert trace[3].addr == trace[2].addr  # load sees the store's address


def test_branch_taken_direction_and_next_pc():
    b = ProgramBuilder("br")
    b.li(Reg.r1, 1)
    b.beq(Reg.r1, Reg.r1, "over")
    b.nop()
    b.label("over")
    b.halt()
    trace = interpret(b.build())
    branch = trace[1]
    assert branch.taken and branch.next_pc == 3
    assert len(trace) == 3  # nop skipped


def test_data_image_visible_to_loads():
    b = ProgramBuilder("img")
    base = b.data.alloc("t", 4)
    b.data.set_word("t", 2, 77)
    b.li(Reg.r1, base)
    b.load(Reg.r2, Reg.r1, imm=16)
    b.beq(Reg.r2, 77, "good", rhs_is_imm=True)
    b.halt()  # reached only if load returned wrong value
    b.label("good")
    b.nop()
    b.halt()
    trace = interpret(b.build())
    assert trace.insts[-2].op is Op.NOP


def test_r0_writes_discarded():
    b = ProgramBuilder("zero")
    b.li(Reg.r0, 99)
    b.bne(Reg.r0, 0, "bad", rhs_is_imm=True)
    b.halt()
    b.label("bad")
    b.nop()
    b.halt()
    trace = interpret(b.build())
    assert trace.insts[-1].op is Op.HALT
    assert trace.insts[-2].op is not Op.NOP


def test_pc_hooks_fire_with_architectural_state():
    observed = []

    def hook(seq, state):
        observed.append((seq, state.regs[Reg.r1]))

    prog = _counting_loop(4)
    addi_pc = next(i.pc for i in prog if i.op is Op.ADDI)
    interpret(prog, pc_hooks={addi_pc: hook})
    # Hook sees post-increment values 1..4.
    assert [v for _, v in observed] == [1, 2, 3, 4]


def test_unwritten_memory_reads_zero():
    b = ProgramBuilder("cold")
    b.li(Reg.r1, 0x20000)
    b.load(Reg.r2, Reg.r1)
    b.bne(Reg.r2, 0, "bad", rhs_is_imm=True)
    b.halt()
    b.label("bad")
    b.nop()
    b.halt()
    trace = interpret(b.build())
    assert trace.insts[-2].op is not Op.NOP


class TestTraceQueries:
    def test_summary_counts(self):
        trace = interpret(_counting_loop(5))
        s = trace.summary()
        assert s["branches"] == 5
        assert s["instructions"] == len(trace)

    def test_branch_stats(self):
        trace = interpret(_counting_loop(5))
        stats = trace.branch_stats()
        (pc, entry), = stats.items()
        assert entry["total"] == 5 and entry["taken"] == 4

    def test_occurrences(self):
        prog = _counting_loop(6)
        trace = interpret(prog)
        addi_pc = next(i.pc for i in prog if i.op is Op.ADDI)
        assert len(trace.occurrences(addi_pc)) == 6


@given(n=st.integers(min_value=1, max_value=40))
def test_loop_iteration_count_matches_bound(n):
    trace = interpret(_counting_loop(n))
    assert sum(1 for d in trace if d.op is Op.ADDI) == n
