"""Golden bit-identity: columnar trace path vs the object-path reference.

The columnar emitter (:mod:`repro.frontend.interpreter`) must be
indistinguishable from the retained object-path reference
(:mod:`repro.frontend.reference`) everywhere downstream: identical trace
columns, identical ``SimStats.summary()``, identical selected p-thread
sets, and identical figure rows -- with the NumPy column backend on and
off.
"""

import pytest

from repro.config import EnergyConfig, MachineConfig
from repro.cpu.pipeline import simulate
from repro.energy.wattch import EnergyModel
from repro.frontend import columns, tracestore
from repro.frontend.interpreter import interpret
from repro.frontend.reference import interpret_reference
from repro.harness import figures, simcache
from repro.harness.experiment import clear_baseline_cache
from repro.pthsel.framework import BaselineEstimates, select_pthreads
from repro.pthsel.targets import Target
from repro.workloads import benchmark_names
from repro.workloads.registry import get_program

HAVE_NUMPY = columns._np is not None

#: Bit-identity does not depend on the instruction budget; a reduced one
#: keeps the 9-benchmark x 3-path matrix affordable.  The seed programs
#: halt past this budget, so truncated interpretation is exercised too.
BUDGET = 60_000

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])

COLUMN_NAMES = ("pc", "op_code", "src1", "src2", "addr", "taken", "next_pc")


@pytest.fixture(autouse=True)
def _clean_state():
    tracestore.clear()
    clear_baseline_cache()
    yield
    columns.set_backend(None)
    tracestore.clear()
    clear_baseline_cache()


def _columns_as_lists(trace):
    return {
        name: [int(v) for v in getattr(trace.columns, name)]
        for name in COLUMN_NAMES
    }


def _signature(trace):
    """SimStats summary + the selected p-thread set for one trace."""
    machine = MachineConfig()
    energy = EnergyConfig()
    stats = simulate(trace, machine)
    measured = EnergyModel(energy, machine).evaluate(stats.activity)
    estimates = BaselineEstimates(
        ipc=stats.ipc,
        l0=float(stats.cycles),
        e0=measured.total_joules,
    )
    selection = select_pthreads(
        trace, estimates, target=Target.LATENCY, machine=machine,
        energy=energy,
    )
    pthreads = sorted(
        (
            p.trigger_pc,
            tuple((inst.pc, inst.op.value, inst.imm) for inst in p.body),
            tuple(p.target_pcs),
        )
        for p in selection.pthreads
    )
    return stats.summary(), pthreads


@pytest.mark.parametrize("bench_name", benchmark_names())
def test_columnar_matches_reference(bench_name):
    program = get_program(bench_name, "train")
    columns.set_backend("python")
    reference = interpret_reference(
        program, max_instructions=BUDGET, require_halt=False
    )
    ref_columns = _columns_as_lists(reference)
    ref_signature = _signature(reference)

    for backend in BACKENDS:
        columns.set_backend(backend)
        trace = interpret(program, max_instructions=BUDGET,
                          require_halt=False)
        assert trace.columns.backend == backend
        assert _columns_as_lists(trace) == ref_columns, (
            f"{bench_name}/{backend}: trace columns diverge from reference"
        )
        assert _signature(trace) == ref_signature, (
            f"{bench_name}/{backend}: stats or p-thread selection diverge"
        )


def _strip_timings(row):
    return {k: v for k, v in row.items() if not k.startswith("t_")}


def _tiny_grid():
    return [
        _strip_timings(row)
        for row in figures.figure5_memory_latency(
            benchmarks=("gcc",),
            latencies=(100, 200),
            targets=(Target.LATENCY,),
            jobs=1,
        )
    ]


def test_figure_rows_identical_across_paths(monkeypatch):
    with simcache.disabled():
        # Reference object path: every trace in the grid built by the
        # retained interpreter (the memo and the DDMT expansion both).
        monkeypatch.setattr(tracestore, "interpret", interpret_reference)
        from repro.ddmt import augment

        monkeypatch.setattr(augment, "interpret", interpret_reference)
        columns.set_backend("python")
        reference_rows = _tiny_grid()

        monkeypatch.setattr(tracestore, "interpret", interpret)
        monkeypatch.setattr(augment, "interpret", interpret)
        for backend in BACKENDS:
            tracestore.clear()
            clear_baseline_cache()
            columns.set_backend(backend)
            assert _tiny_grid() == reference_rows, (
                f"{backend}: figure rows diverge from the object-path "
                "reference"
            )
