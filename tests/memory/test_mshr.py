"""Tests for the MSHR file."""

from repro.memory.mshr import MSHRFile


def test_allocate_and_lookup():
    m = MSHRFile(4)
    assert m.allocate(0x100, fill_time=50, now=0)
    assert m.lookup(0x100, now=10) == 50


def test_entries_expire_at_fill_time():
    m = MSHRFile(4)
    m.allocate(0x100, fill_time=50, now=0)
    assert m.lookup(0x100, now=50) is None
    assert m.occupancy(now=50) == 0


def test_full_file_rejects_new_lines():
    m = MSHRFile(2)
    assert m.allocate(0, 100, now=0)
    assert m.allocate(64, 100, now=0)
    assert not m.allocate(128, 100, now=0)
    assert m.stats.full_stalls == 1


def test_same_line_merges_instead_of_allocating():
    m = MSHRFile(1)
    assert m.allocate(0, 100, now=0)
    assert m.allocate(0, 120, now=5)  # merge, not a new entry
    assert m.stats.merges == 1
    assert m.occupancy(now=5) == 1


def test_capacity_frees_after_expiry():
    m = MSHRFile(1)
    m.allocate(0, 10, now=0)
    assert m.allocate(64, 30, now=10)
