"""Integration tests for the composed memory hierarchy."""

import pytest

from repro.config import MachineConfig
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def mh():
    return MemoryHierarchy(MachineConfig())


def _fill_tlb(mh, addr):
    """Touch once so later accesses measure cache, not TLB, effects."""
    mh.dtlb.access(addr)


def test_l1_hit_latency(mh):
    addr = 0x1000
    _fill_tlb(mh, addr)
    mh.warm_data(addr)
    r = mh.data_access(addr, now=100)
    assert r.l1_hit
    assert r.complete_at == 100 + mh.config.dcache.hit_latency


def test_full_miss_charges_memory_latency(mh):
    addr = 0x4000
    _fill_tlb(mh, addr)
    r = mh.data_access(addr, now=0)
    assert r.mem_access and not r.l1_hit and not r.l2_hit
    expected_min = (mh.config.dcache.hit_latency + mh.config.l2.hit_latency
                    + mh.config.memory_latency)
    assert r.complete_at >= expected_min


def test_l2_hit_path(mh):
    addr = 0x8000
    _fill_tlb(mh, addr)
    mh.l2.fill(addr)
    r = mh.data_access(addr, now=0)
    assert r.l2_accessed and r.l2_hit and not r.mem_access
    assert r.complete_at >= mh.config.dcache.hit_latency + mh.config.l2.hit_latency


def test_mshr_merge_on_overlapping_miss(mh):
    addr = 0xA000
    _fill_tlb(mh, addr)
    first = mh.data_access(addr, now=0)
    # Evict from L1 view by using a different offset in the same line; the
    # line is still outstanding in the MSHRs.
    mh.dcache.invalidate_all()
    second = mh.data_access(addr + 8, now=5)
    assert second.mshr_merged
    assert second.complete_at <= first.complete_at + mh.config.l2.hit_latency


def test_mshr_exhaustion_forces_retry(mh):
    # Issue misses to distinct lines until the 16-entry file fills.
    results = []
    for i in range(mh.config.mshr_entries + 1):
        addr = 0x100000 + i * 4096
        _fill_tlb(mh, addr)
        results.append(mh.data_access(addr, now=0))
    assert any(r.retry for r in results)
    assert results[-1].retry


def test_pthread_access_bypasses_l1(mh):
    addr = 0x20000
    _fill_tlb(mh, addr)
    r = mh.data_access(addr, now=0, is_pthread=True)
    mh.mshrs.sync(r.complete_at)  # let the fill land
    assert not mh.dcache.probe(addr)
    assert mh.l2.probe(addr)


def test_main_access_fills_l1(mh):
    addr = 0x20000
    _fill_tlb(mh, addr)
    r = mh.data_access(addr, now=0)
    mh.mshrs.sync(r.complete_at)
    assert mh.dcache.probe(addr)


def test_line_not_installed_while_in_flight(mh):
    """Dependent accesses must not hit a cache on a line whose fill has
    not arrived yet (the pointer-chase timing property)."""
    addr = 0x28000
    _fill_tlb(mh, addr)
    first = mh.data_access(addr, now=0)
    assert first.mem_access
    # An access to the same line before the fill time merges (and waits).
    second = mh.data_access(addr, now=10)
    assert second.mshr_merged
    assert second.complete_at >= first.complete_at
    # After the fill lands, the same line is an L1 hit.
    third = mh.data_access(addr, now=first.complete_at + 1)
    assert third.l1_hit


def test_prefetched_hit_accounting(mh):
    addr = 0x30000
    _fill_tlb(mh, addr)
    mh.data_access(addr, now=0, is_pthread=True)  # prefetch into L2
    mh.data_access(addr, now=500)  # demand access finds it
    assert mh.prefetched_hits == 1
    assert mh.pthread_l2_misses == 1
    assert mh.demand_l2_misses == 0


def test_inst_fetch_hits_after_warm(mh):
    mh.itlb.access(0)
    mh.warm_inst(0)
    r = mh.inst_fetch(0, now=10)
    assert r.l1_hit
    assert r.complete_at == 10 + mh.config.icache.hit_latency


def test_memory_bus_contention_delays_parallel_misses(mh):
    for i in range(8):
        _fill_tlb(mh, 0x200000 + i * 4096)
    times = []
    for i in range(8):
        r = mh.data_access(0x200000 + i * 4096, now=0)
        times.append(r.complete_at)
    # All 8 misses start together but the 16-byte memory bus serializes
    # their line fills: completion times must strictly increase.
    assert times == sorted(times)
    assert times[-1] - times[0] >= 7 * 16


def test_tlb_miss_adds_latency(mh):
    cold = mh.data_access(0x50000, now=0)
    assert cold.tlb_miss
