"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.errors import ConfigError
from repro.memory.cache import Cache


def small_cache(assoc=2, sets=4, line=64):
    return Cache("t", CacheConfig(line * assoc * sets, assoc, line, 1))


def test_cold_miss_then_hit_after_fill():
    c = small_cache()
    assert not c.access(0)
    c.fill(0)
    assert c.access(0)


def test_same_line_different_offsets_hit():
    c = small_cache()
    c.fill(0)
    assert c.access(8) and c.access(63)


def test_lru_evicts_least_recent():
    c = small_cache(assoc=2, sets=1)
    c.fill(0)      # line A
    c.fill(64)     # line B
    c.access(0)    # A becomes MRU
    c.fill(128)    # evicts B
    assert c.access(0)
    assert not c.access(64)


def test_dirty_eviction_returns_victim_line():
    c = small_cache(assoc=1, sets=1)
    c.fill(0, dirty=True)
    victim = c.fill(64)
    assert victim == 0
    assert c.stats.writebacks == 1


def test_clean_eviction_returns_none():
    c = small_cache(assoc=1, sets=1)
    c.fill(0, dirty=False)
    assert c.fill(64) is None


def test_write_hit_marks_dirty():
    c = small_cache(assoc=1, sets=1)
    c.fill(0)
    c.access(0, is_write=True)
    assert c.fill(64) == 0  # dirty writeback


def test_probe_has_no_lru_side_effect():
    c = small_cache(assoc=2, sets=1)
    c.fill(0)
    c.fill(64)
    assert c.probe(0)
    c.fill(128)  # without the probe promoting line 0, it is still LRU
    assert not c.probe(0)


def test_stats_accumulate():
    c = small_cache()
    c.access(0)
    c.fill(0)
    c.access(0)
    assert c.stats.accesses == 2
    assert c.stats.hits == 1
    assert c.stats.misses == 1
    assert c.stats.miss_rate == pytest.approx(0.5)


def test_invalidate_all_empties_cache():
    c = small_cache()
    c.fill(0)
    c.invalidate_all()
    assert not c.probe(0)
    assert c.resident_lines == 0


def test_line_of_alignment():
    c = small_cache()
    assert c.line_of(130) == 128
    assert c.line_of(64) == 64


def test_bad_geometry_rejected():
    with pytest.raises(ConfigError):
        CacheConfig(1000, 2, 64, 1)  # not divisible into power-of-two sets
    with pytest.raises(ConfigError):
        CacheConfig(1024, 0, 64, 1)


@settings(max_examples=50)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                      max_size=200))
def test_capacity_never_exceeded(addrs):
    c = small_cache(assoc=2, sets=4)
    for a in addrs:
        if not c.access(a):
            c.fill(a)
    assert c.resident_lines <= 8


@settings(max_examples=50)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                      max_size=100))
def test_fill_then_immediate_access_always_hits(addrs):
    c = small_cache()
    for a in addrs:
        c.fill(a)
        assert c.access(a)
