"""Tests for bus occupancy modeling."""

from repro.memory.bus import Bus


def test_transfer_cycles_for_line_over_16b_bus():
    bus = Bus("mem", width_bytes=16, divisor=4)
    # 64B line = 4 beats at 1/4 core clock = 16 core cycles.
    assert bus.transfer_cycles(64) == 16


def test_back_to_back_transfers_serialize():
    bus = Bus("mem", width_bytes=16, divisor=4)
    first = bus.acquire(0, 64)
    second = bus.acquire(0, 64)
    assert first == 16
    assert second == 32
    assert bus.stats.queue_delay == 16


def test_idle_bus_starts_immediately():
    bus = Bus("l2", width_bytes=16, divisor=1)
    done = bus.acquire(100, 64)
    assert done == 104
    assert bus.stats.queue_delay == 0


def test_reset_clears_state():
    bus = Bus("mem", width_bytes=16, divisor=4)
    bus.acquire(0, 64)
    bus.reset()
    assert bus.acquire(0, 64) == 16
    assert bus.stats.transfers == 1
