"""Tests for the TLB model."""

from repro.memory.tlb import TLB


def test_first_touch_misses_then_hits():
    tlb = TLB("d", entries=4, page_bytes=8192, miss_latency=30)
    assert tlb.access(0) == 30
    assert tlb.access(100) == 0  # same page
    assert tlb.access(8192) == 30  # next page


def test_lru_replacement_over_capacity():
    tlb = TLB("d", entries=2, page_bytes=8192, miss_latency=30)
    tlb.access(0)
    tlb.access(8192)
    tlb.access(0)          # page 0 MRU
    tlb.access(2 * 8192)   # evicts page 1
    assert tlb.access(0) == 0
    assert tlb.access(8192) == 30


def test_stats_track_miss_rate():
    tlb = TLB("d", entries=8, page_bytes=8192, miss_latency=30)
    tlb.access(0)
    tlb.access(0)
    assert tlb.stats.accesses == 2
    assert tlb.stats.misses == 1
    assert tlb.stats.miss_rate == 0.5
