"""Unit and property tests for opcode semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import (
    ALU_SEMANTICS,
    BRANCH_SEMANTICS,
    IMMEDIATE_OPS,
    Op,
    OpClass,
)

i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


class TestClassification:
    def test_every_op_has_a_class(self):
        for op in Op:
            assert isinstance(op.op_class, OpClass)

    def test_load_store_flags(self):
        assert Op.LD.is_load and not Op.LD.is_store
        assert Op.ST.is_store and not Op.ST.is_load

    def test_branches_are_control(self):
        for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            assert op.is_branch and op.is_control
        assert Op.JMP.is_control and not Op.JMP.is_branch

    def test_register_writers(self):
        assert Op.ADD.writes_register
        assert Op.LD.writes_register
        for op in (Op.ST, Op.BEQ, Op.JMP, Op.NOP, Op.HALT):
            assert not op.writes_register

    def test_alu_ops_have_semantics(self):
        for op in Op:
            if op.op_class in (OpClass.ALU, OpClass.MUL):
                assert op in ALU_SEMANTICS
            if op.op_class is OpClass.BRANCH:
                assert op in BRANCH_SEMANTICS

    def test_immediate_ops_are_alu(self):
        for op in IMMEDIATE_OPS:
            assert op.op_class is OpClass.ALU


class TestSemantics:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Op.ADD, 2, 3, 5),
            (Op.SUB, 2, 3, -1),
            (Op.AND, 0b1100, 0b1010, 0b1000),
            (Op.OR, 0b1100, 0b1010, 0b1110),
            (Op.XOR, 0b1100, 0b1010, 0b0110),
            (Op.SHL, 1, 4, 16),
            (Op.SHR, 16, 4, 1),
            (Op.SLT, -1, 0, 1),
            (Op.SLT, 1, 0, 0),
            (Op.MUL, 7, 6, 42),
            (Op.LI, 999, 5, 5),
            (Op.MOV, 13, 999, 13),
        ],
    )
    def test_basic_results(self, op, a, b, expected):
        assert ALU_SEMANTICS[op](a, b) == expected

    def test_add_wraps_to_64_bits(self):
        top = 2**63 - 1
        assert ALU_SEMANTICS[Op.ADD](top, 1) == -(2**63)

    def test_mul_wraps_to_64_bits(self):
        result = ALU_SEMANTICS[Op.MUL](2**40, 2**40)
        assert -(2**63) <= result < 2**63

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Op.BEQ, 1, 1, True),
            (Op.BEQ, 1, 2, False),
            (Op.BNE, 1, 2, True),
            (Op.BLT, -5, 0, True),
            (Op.BLT, 0, 0, False),
            (Op.BGE, 0, 0, True),
            (Op.BGE, -1, 0, False),
        ],
    )
    def test_branch_outcomes(self, op, a, b, expected):
        assert BRANCH_SEMANTICS[op](a, b) is expected


class TestSemanticsProperties:
    @given(a=i64, b=i64)
    def test_results_stay_in_64_bit_range(self, a, b):
        for op, fn in ALU_SEMANTICS.items():
            result = fn(a, b)
            assert -(2**63) <= result < 2**63, op

    @given(a=i64, b=i64)
    def test_add_sub_invert(self, a, b):
        total = ALU_SEMANTICS[Op.ADD](a, b)
        assert ALU_SEMANTICS[Op.SUB](total, b) == a

    @given(a=i64, b=i64)
    def test_xor_self_inverse(self, a, b):
        x = ALU_SEMANTICS[Op.XOR](a, b)
        assert ALU_SEMANTICS[Op.XOR](x, b) == a

    @given(a=i64, b=i64)
    def test_branch_trichotomy(self, a, b):
        blt = BRANCH_SEMANTICS[Op.BLT](a, b)
        bge = BRANCH_SEMANTICS[Op.BGE](a, b)
        assert blt != bge
