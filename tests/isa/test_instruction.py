"""Validation tests for StaticInst operand checking."""

import pytest

from repro.errors import ProgramError
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import Op


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(op=Op.ADD, rs1=1, rs2=2),  # missing rd
        dict(op=Op.ADD, rd=1, rs1=2),  # missing rs2
        dict(op=Op.ADDI, rd=1, rs1=2),  # missing imm
        dict(op=Op.LD, rd=1),  # missing base
        dict(op=Op.ST, rs1=1),  # missing data reg
        dict(op=Op.BEQ, rs1=1, rs2=2),  # missing target
        dict(op=Op.JMP),  # missing target
        dict(op=Op.ADD, rd=77, rs1=1, rs2=2),  # bad register
    ],
)
def test_malformed_instructions_rejected(kwargs):
    with pytest.raises(ProgramError):
        StaticInst(pc=0, **kwargs)


def test_sources_for_reg_reg_alu():
    inst = StaticInst(0, Op.ADD, rd=3, rs1=1, rs2=2)
    assert inst.sources == (1, 2)
    assert inst.dest == 3


def test_sources_for_immediate_alu_excludes_rs2():
    inst = StaticInst(0, Op.ADDI, rd=3, rs1=1, imm=5)
    assert inst.sources == (1,)


def test_sources_for_li_empty():
    inst = StaticInst(0, Op.LI, rd=3, imm=5)
    assert inst.sources == ()


def test_store_reads_base_and_data():
    inst = StaticInst(0, Op.ST, rs1=1, rs2=2, imm=0)
    assert inst.sources == (1, 2)
    assert inst.dest is None


def test_branch_reads_both_operands():
    inst = StaticInst(0, Op.BEQ, rs1=1, rs2=2, target=0)
    assert inst.sources == (1, 2)


def test_str_is_informative():
    inst = StaticInst(0, Op.LD, rd=2, rs1=1, imm=64, annotation="probe")
    text = str(inst)
    assert "ld" in text and "r2" in text and "probe" in text
