"""Tests for the ProgramBuilder DSL and data segment."""

import pytest

from repro.errors import ProgramError
from repro.isa.builder import WORD_BYTES, ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.registers import Reg


def test_simple_loop_builds_and_resolves_labels():
    b = ProgramBuilder("loop")
    b.li(Reg.r1, 0)
    b.label("top")
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, 10, "top", rhs_is_imm=True)
    b.halt()
    prog = b.build()
    branch = prog.instructions[-2]
    assert branch.op is Op.BLT
    assert branch.target == 1  # the label "top"


def test_undefined_label_raises():
    b = ProgramBuilder("bad")
    b.jump("nowhere")
    b.halt()
    with pytest.raises(ProgramError, match="nowhere"):
        b.build()


def test_duplicate_label_raises():
    b = ProgramBuilder("dup")
    b.label("x")
    with pytest.raises(ProgramError, match="defined twice"):
        b.label("x")


def test_data_alloc_is_aligned_and_disjoint():
    b = ProgramBuilder("data")
    a = b.data.alloc("a", 10)
    c = b.data.alloc("c", 5)
    assert a % 64 == 0 and c % 64 == 0
    assert c >= a + 10 * WORD_BYTES


def test_data_fill_and_set_word():
    b = ProgramBuilder("data")
    base = b.data.alloc("t", 4)
    b.data.fill("t", [10, 20, 30, 40])
    assert b.data.image[base] == 10
    assert b.data.image[base + 3 * WORD_BYTES] == 40
    with pytest.raises(ProgramError):
        b.data.set_word("t", 4, 1)


def test_data_double_alloc_raises():
    b = ProgramBuilder("data")
    b.data.alloc("t", 4)
    with pytest.raises(ProgramError, match="allocated twice"):
        b.data.alloc("t", 4)


def test_base_symbol_folds_region_base_into_immediate():
    b = ProgramBuilder("sym")
    base = b.data.alloc("arr", 8)
    b.li(Reg.r1, 0)
    inst = b.load(Reg.r2, Reg.r1, imm=16, base_symbol="arr")
    assert inst.imm == base + 16
    b.halt()
    b.build()


def test_rhs_is_imm_materializes_scratch_li():
    b = ProgramBuilder("imm")
    b.label("top")
    b.li(Reg.r1, 0)
    b.blt(Reg.r1, 7, "top", rhs_is_imm=True)
    b.halt()
    prog = b.build()
    li = prog.instructions[1]
    assert li.op is Op.LI and li.imm == 7 and li.rd == 31


def test_initial_registers_recorded():
    b = ProgramBuilder("regs")
    b.set_reg(Reg.r5, 1234)
    b.halt()
    prog = b.build()
    assert prog.initial_regs[Reg.r5] == 1234


def test_program_validates_pc_sequence():
    from repro.isa.instruction import Program, StaticInst

    good = [StaticInst(0, Op.NOP), StaticInst(1, Op.HALT)]
    Program("ok", good)
    bad = [StaticInst(0, Op.NOP), StaticInst(5, Op.HALT)]
    with pytest.raises(ProgramError, match="mismatch"):
        Program("bad", bad)


def test_program_rejects_out_of_range_targets():
    from repro.isa.instruction import Program, StaticInst

    insts = [StaticInst(0, Op.JMP, target=9), StaticInst(1, Op.HALT)]
    with pytest.raises(ProgramError, match="out of range"):
        Program("bad", insts)


def test_listing_mentions_annotations():
    b = ProgramBuilder("ann")
    b.li(Reg.r1, 1, annotation="the-answer")
    b.halt()
    assert "the-answer" in b.build().listing()
