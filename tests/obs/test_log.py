"""Tests for the structured logger and hierarchical span timer."""

import io
import json
import time

import pytest

from repro import obs
from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


def _events(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_log_event_emits_json_line():
    stream = io.StringIO()
    obs.configure(level="info", stream=stream)
    obs.log_event("hello", benchmark="mcf", n=3)
    (event,) = _events(stream)
    assert event["event"] == "hello"
    assert event["level"] == "info"
    assert event["benchmark"] == "mcf"
    assert event["n"] == 3
    assert isinstance(event["ts"], float)


def test_levels_filter_events():
    stream = io.StringIO()
    obs.configure(level="warning", stream=stream)
    obs.log_event("quiet", level="info")
    obs.log_event("debugging", level="debug")
    obs.log_event("loud", level="warning")
    events = _events(stream)
    assert [e["event"] for e in events] == ["loud"]


def test_configure_rejects_unknown_level():
    with pytest.raises(ValueError):
        obs.configure(level="verbose")


def test_is_enabled_tracks_threshold():
    assert not obs.is_enabled("error")  # off by default
    obs.configure(level="info", stream=io.StringIO())
    assert obs.is_enabled("info")
    assert obs.is_enabled("error")
    assert not obs.is_enabled("debug")


def test_span_nesting_builds_hierarchical_path():
    stream = io.StringIO()
    obs.configure(level="info", stream=stream)
    with obs.span("experiment", benchmark="gcc"):
        with obs.span("simulate") as inner:
            assert inner.path == "experiment/simulate"
            assert obs_log.current_span_path() == "experiment/simulate"
    assert obs_log.current_span_path() == ""
    ends = [e for e in _events(stream) if e["event"] == "span_end"]
    assert [e["name"] for e in ends] == ["simulate", "experiment"]
    assert ends[0]["span_path"] == "experiment/simulate"
    assert ends[1]["wall_s"] >= ends[0]["wall_s"] >= 0.0


def test_span_times_even_when_disabled():
    stream = io.StringIO()
    # Not configured: nothing may be written, but wall_s must be real.
    with obs.span("phase") as sp:
        time.sleep(0.002)
    assert sp.wall_s >= 0.002
    assert stream.getvalue() == ""


def test_span_derives_cycles_per_sec():
    stream = io.StringIO()
    obs.configure(level="info", stream=stream)
    with obs.span("simulate") as sp:
        time.sleep(0.001)
        sp.annotate(cycles=1_000_000)
    (event,) = [e for e in _events(stream) if e["event"] == "span_end"]
    assert event["cycles"] == 1_000_000
    assert event["cycles_per_sec"] > 0


def test_span_reports_exceptions():
    stream = io.StringIO()
    obs.configure(level="info", stream=stream)
    with pytest.raises(RuntimeError):
        with obs.span("doomed"):
            raise RuntimeError("boom")
    (event,) = [e for e in _events(stream) if e["event"] == "span_end"]
    assert event["error"] == "RuntimeError"


def test_disabled_fast_path_writes_nothing():
    stream = io.StringIO()
    obs.configure(level="info", stream=stream)
    obs.reset()  # back to off, stream cleared
    start = time.perf_counter()
    for _ in range(50_000):
        obs.log_event("noise", level="debug", payload="x" * 100)
    elapsed = time.perf_counter() - start
    assert stream.getvalue() == ""
    # Generous bound: the disabled path is one dict lookup + compare.
    assert elapsed < 1.0
