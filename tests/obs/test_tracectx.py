"""Distributed trace-context propagation: minting, activation,
header round-trips, the span recorder, and obs.Span integration."""

import json
import threading

from repro import obs
from repro.obs import tracectx
from repro.obs.export import build_span_trace, validate_chrome_trace


def setup_function(_fn):
    tracectx.drain()  # the recorder is process-global: start clean


def test_new_context_shapes_and_uniqueness():
    a = tracectx.new_context()
    b = tracectx.new_context()
    assert len(a.trace_id) == 32 and len(a.span_id) == 16
    assert int(a.trace_id, 16) != 0
    assert a.trace_id != b.trace_id
    child = a.child()
    assert child.trace_id == a.trace_id
    assert child.parent_span_id == a.span_id
    assert child.span_id != a.span_id


def test_activation_is_scoped_and_nested():
    assert tracectx.current() is None
    ctx = tracectx.new_context()
    with tracectx.activate(ctx):
        assert tracectx.current() is ctx
        inner = ctx.child()
        with tracectx.activate(inner):
            assert tracectx.current() is inner
        assert tracectx.current() is ctx
    assert tracectx.current() is None
    assert not tracectx.is_active()


def test_activation_is_thread_local():
    ctx = tracectx.new_context()
    seen = {}

    def probe():
        seen["other"] = tracectx.current()

    with tracectx.activate(ctx):
        t = threading.Thread(target=probe)
        t.start()
        t.join()
    assert seen["other"] is None


def test_traceparent_roundtrip():
    ctx = tracectx.new_context()
    header = tracectx.format_traceparent(ctx)
    assert header.startswith("00-")
    back = tracectx.parse_traceparent(header)
    assert back is not None
    assert back.trace_id == ctx.trace_id
    # The parsed context's span is the *remote caller's* span: spans
    # minted from it become the caller's children.
    assert back.span_id == ctx.span_id


def test_traceparent_rejects_garbage():
    for bad in (
        None,
        "",
        "not-a-header",
        "00-zz-zz-01",
        "ff-" + "0" * 32 + "-" + "1" * 16 + "-01",  # version ff
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # zero span id
    ):
        assert tracectx.parse_traceparent(bad) is None, bad


def test_encode_decode_roundtrip_is_json_safe():
    ctx = tracectx.new_context().child()
    encoded = tracectx.encode(ctx)
    json.dumps(encoded)  # must survive a job payload / ledger record
    back = tracectx.decode(encoded)
    assert back.trace_id == ctx.trace_id
    assert back.span_id == ctx.span_id
    assert back.parent_span_id == ctx.parent_span_id
    assert tracectx.encode(None) is None
    assert tracectx.decode(None) is None
    assert tracectx.decode({"nonsense": 1}) is None


def test_start_finish_span_records_with_parentage():
    root = tracectx.new_context()
    with tracectx.activate(root):
        token = tracectx.start_span("outer")
        inner_token = tracectx.start_span("inner")
        tracectx.finish_span("inner", inner_token)
        tracectx.finish_span("outer", token, attrs={"k": 1})
    spans = {s.name: s for s in tracectx.drain()}
    assert spans["outer"].parent_span_id == root.span_id
    assert spans["inner"].parent_span_id == spans["outer"].span_id
    assert spans["outer"].attrs == {"k": 1}
    assert spans["outer"].trace_id == root.trace_id


def test_obs_span_records_only_under_active_context():
    with obs.Span("untracked.work"):
        pass
    assert tracectx.drain() == []  # off-path: no context, no span
    ctx = tracectx.new_context()
    with tracectx.activate(ctx):
        with obs.Span("tracked.work", cycles=7):
            pass
    spans = tracectx.drain()
    assert [s.name for s in spans] == ["tracked.work"]
    assert spans[0].attrs["cycles"] == 7
    assert spans[0].attrs["span_path"] == "tracked.work"


def test_ingest_dedups_on_trace_and_span_id():
    ctx = tracectx.new_context()
    record = tracectx.SpanRecord(
        name="shipped", trace_id=ctx.trace_id, span_id=ctx.span_id,
        parent_span_id=None, start_s=1.0, end_s=2.0,
        process="worker", tid=1, attrs={},
    )
    assert tracectx.ingest([record.to_dict()]) == 1
    # The same span arriving again (result payload re-polled) is a
    # no-op, not a duplicate bar in the waterfall.
    assert tracectx.ingest([record.to_dict()]) == 0
    assert len(tracectx.drain()) == 1


def test_take_extracts_only_the_requested_trace():
    a, b = tracectx.new_context(), tracectx.new_context()
    for ctx, name in ((a, "span.a"), (b, "span.b")):
        tracectx.record_span(name, ctx.child(), 1.0, 2.0)
    taken = tracectx.take(a.trace_id)
    assert [s.name for s in taken] == ["span.a"]
    left = tracectx.drain()
    assert [s.name for s in left] == ["span.b"]


def test_recorder_is_bounded():
    ctx = tracectx.new_context()
    for i in range(tracectx.MAX_RECORDED_SPANS + 100):
        tracectx.record_span(f"s{i}", ctx.child(), 0.0, 1.0)
    assert len(tracectx.drain()) == tracectx.MAX_RECORDED_SPANS


def test_span_trace_export_validates():
    tracectx.set_process_label("test-proc")
    try:
        root = tracectx.new_context()
        with tracectx.activate(root):
            with obs.Span("outer"):
                with obs.Span("inner"):
                    pass
        doc = build_span_trace(tracectx.drain())
        assert validate_chrome_trace(doc) == []
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert {e["name"] for e in slices} == {"outer", "inner"}
        names = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e.get("name") == "process_name"
        ]
        assert names == ["test-proc"]
    finally:
        tracectx.set_process_label(None)
