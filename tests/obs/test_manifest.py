"""Tests for config fingerprints and the run-artifact writer."""

import csv
import json

from repro.config import EnergyConfig, MachineConfig
from repro.obs.manifest import (
    RESULTS_SCHEMA_VERSION,
    RunWriter,
    config_fingerprint,
    git_commit,
)


def test_fingerprint_stable_across_instances():
    assert config_fingerprint(MachineConfig()) == config_fingerprint(
        MachineConfig()
    )


def test_fingerprint_distinguishes_values_and_types():
    base = config_fingerprint(MachineConfig())
    assert config_fingerprint(MachineConfig(width=8)) != base
    assert config_fingerprint(EnergyConfig()) != base


def test_config_fingerprint_property():
    cfg = MachineConfig()
    assert cfg.fingerprint == config_fingerprint(cfg)
    assert len(cfg.fingerprint) == 16


def test_run_writer_round_trip(tmp_path):
    out = tmp_path / "demo"
    writer = RunWriter(str(out), command="figure3", argv=["figure3"],
                       configs={"machine": MachineConfig()})
    writer.add_row({"benchmark": "gcc", "target": "L", "speedup_pct": 12.5})
    writer.add_row({"benchmark": "gcc", "target": "E", "speedup_pct": 4.0})
    manifest_path = writer.finalize(
        counters={"cpu.pipeline.simulations": 3}, gmeans={"L": 12.5}
    )

    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest_path == str(out / "manifest.json")
    assert manifest["command"] == "figure3"
    assert manifest["n_rows"] == 2
    assert manifest["version"]
    assert manifest["counters"] == {"cpu.pipeline.simulations": 3}
    assert manifest["gmeans"] == {"L": 12.5}
    fp = manifest["configs"]["machine"]["fingerprint"]
    assert fp == MachineConfig().fingerprint
    assert manifest["configs"]["machine"]["values"]["width"] == 6

    rows = [json.loads(line)
            for line in (out / "results.jsonl").read_text().splitlines()]
    assert [r["target"] for r in rows] == ["L", "E"]

    with open(out / "run_table.csv", newline="") as fh:
        table = list(csv.DictReader(fh))
    assert len(table) == 2
    assert table[0]["benchmark"] == "gcc"
    assert table[0]["run_id"] == writer.run_id
    assert table[0]["command"] == "figure3"
    assert float(table[0]["speedup_pct"]) == 12.5


def test_run_table_appends_and_reuses_header(tmp_path):
    out = str(tmp_path / "demo")
    w1 = RunWriter(out, command="run")
    w1.add_row({"benchmark": "a", "target": "L", "speedup_pct": 1.0})
    w1.finalize()

    # A second run into the same directory appends; its extra column is
    # dropped so the accumulated table stays rectangular.
    w2 = RunWriter(out, command="run")
    w2.add_row({"benchmark": "b", "target": "E", "speedup_pct": 2.0,
                "new_col": 9})
    w2.finalize()

    with open(f"{out}/run_table.csv", newline="") as fh:
        lines = fh.read().splitlines()
    assert len(lines) == 3  # one header + two rows
    with open(f"{out}/run_table.csv", newline="") as fh:
        table = list(csv.DictReader(fh))
    assert [r["benchmark"] for r in table] == ["a", "b"]
    assert "new_col" not in table[0]
    # results.jsonl accumulates too, keeping the dropped column.
    results = open(f"{out}/results.jsonl").read().splitlines()
    assert len(results) == 2
    assert json.loads(results[1])["new_col"] == 9


def test_run_ids_embed_timestamp(tmp_path):
    writer = RunWriter(str(tmp_path / "x"))
    assert "T" in writer.run_id and "-" in writer.run_id


def test_results_records_are_schema_stamped(tmp_path):
    writer = RunWriter(str(tmp_path / "x"), command="run")
    writer.add_row({"benchmark": "gap", "target": "L"})
    writer.finalize()
    record = json.loads(
        open(tmp_path / "x" / "results.jsonl").read().splitlines()[0]
    )
    assert record["schema"] == RESULTS_SCHEMA_VERSION
    # In-memory rows stay unstamped: run_table.csv and figure payloads
    # keep their historical shape.
    assert "schema" not in writer.rows[0]
    with open(tmp_path / "x" / "run_table.csv", newline="") as fh:
        header = fh.readline()
    assert "schema" not in header


def test_manifest_carries_schema_version_and_commit(tmp_path, monkeypatch):
    monkeypatch.setenv("GITHUB_SHA", "f" * 40)
    writer = RunWriter(str(tmp_path / "x"), command="run")
    writer.add_row({"benchmark": "gap", "target": "L"})
    writer.finalize()
    manifest = json.loads(open(tmp_path / "x" / "manifest.json").read())
    assert manifest["schema_version"] == RESULTS_SCHEMA_VERSION
    assert manifest["git_commit"] == "f" * 40


def test_git_commit_env_override(monkeypatch):
    monkeypatch.setenv("GITHUB_SHA", "abc123")
    assert git_commit() == "abc123"
