"""Tests for the counters/gauges/histograms registry."""

import pytest

from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    Histogram,
    MetricsRegistry,
    snapshot_delta,
)


def test_counter_get_or_create_identity():
    reg = MetricsRegistry()
    a = reg.counter("x.hits")
    b = reg.counter("x.hits")
    assert a is b
    a.add()
    a.add(4)
    assert b.value == 5


def test_gauge_set_last_value_wins():
    reg = MetricsRegistry()
    g = reg.gauge("x.rate")
    g.set(10.0)
    g.set(3.5)
    assert g.value == 3.5


def test_snapshot_is_sorted_and_complete():
    reg = MetricsRegistry()
    reg.counter("b.count").add(2)
    reg.gauge("a.rate").set(1.5)
    snap = reg.snapshot()
    assert list(snap) == ["a.rate", "b.count"]
    assert snap == {"a.rate": 1.5, "b.count": 2}


def test_reset_zeroes_but_keeps_references():
    reg = MetricsRegistry()
    c = reg.counter("n")
    c.add(7)
    reg.reset()
    assert c.value == 0
    c.add()  # the cached reference still feeds the registry
    assert reg.snapshot() == {"n": 1}


def test_clear_drops_registrations():
    reg = MetricsRegistry()
    reg.counter("n").add()
    reg.clear()
    assert reg.snapshot() == {}


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_delta_since_counters_diff_gauges_report_current():
    reg = MetricsRegistry()
    reg.counter("sims").add(3)
    reg.gauge("rate").set(100.0)
    before = reg.snapshot()
    reg.counter("sims").add(2)
    reg.gauge("rate").set(250.0)
    delta = reg.delta_since(before)
    # Counter: only the change.  Gauge: its current (last) value, not
    # the numeric difference -- a reused worker's rate gauge must not
    # merge as "rate went up by 150".
    assert delta == {"sims": 2, "rate": 250.0}


def test_delta_since_drops_unchanged():
    reg = MetricsRegistry()
    reg.counter("still").add(4)
    before = reg.snapshot()
    assert reg.delta_since(before) == {}


def test_merge_adds_counters_and_sets_gauges():
    reg = MetricsRegistry()
    reg.counter("sims").add(1)
    reg.gauge("rate").set(10.0)
    reg.merge({"sims": 5, "rate": 99.0, "fresh.counter": 2})
    snap = reg.snapshot()
    assert snap["sims"] == 6
    assert snap["rate"] == 99.0
    # Unknown names become counters (worker saw a code path the parent
    # has not touched yet) and merge additively thereafter.
    assert snap["fresh.counter"] == 2
    reg.merge({"fresh.counter": 3})
    assert reg.snapshot()["fresh.counter"] == 5


def test_snapshot_delta_roundtrip_through_merge():
    worker = MetricsRegistry()
    before = worker.snapshot()
    worker.counter("a").add(7)
    worker.counter("b").add(0)  # never moved: dropped from the delta
    delta = snapshot_delta(before, worker.snapshot())
    assert delta == {"a": 7}

    parent = MetricsRegistry()
    parent.counter("a").add(1)
    parent.merge(delta)
    assert parent.snapshot()["a"] == 8


# --------------------------------------------------------------------- #
# Histograms.


#: A latency sample set spanning several decades of the fixed bounds,
#: including edge values that land exactly on bucket boundaries.
_SAMPLES = [
    0.0004, 0.001, 0.0017, 0.004, 0.009, 0.02, 0.02, 0.11, 0.3, 0.5,
    0.77, 1.2, 2.0, 4.9, 9.0, 30.0, 120.0, 1000.0,
]


def test_histogram_observe_counts_and_state_shape():
    h = Histogram("lat")
    for s in _SAMPLES:
        h.observe(s)
    state = h.state()
    assert len(state["buckets"]) == len(HISTOGRAM_BOUNDS) + 1
    assert sum(state["buckets"]) == len(_SAMPLES) == state["count"]
    assert state["sum"] == pytest.approx(sum(_SAMPLES))
    # The overflow (+Inf) bucket caught the 1000s outlier.
    assert state["buckets"][-1] == 1


def test_histogram_worker_delta_merge_across_jobs_equals_sequential():
    # The parallel engine's contract: each of jobs=4 workers observes
    # its shard, ships delta_since(before), and the parent merge must
    # equal one sequential registry observing everything -- bucket for
    # bucket, not just in total.
    sequential = MetricsRegistry()
    seq_hist = sequential.histogram("harness.phase.sim_seconds")
    for s in _SAMPLES:
        seq_hist.observe(s)

    parent = MetricsRegistry()
    shards = [_SAMPLES[i::4] for i in range(4)]
    assert all(shards)  # jobs=4 really split the work
    for shard in shards:
        worker = MetricsRegistry()
        before = worker.snapshot()
        for s in shard:
            worker.histogram("harness.phase.sim_seconds").observe(s)
        parent.merge(worker.delta_since(before))

    merged = parent.histogram("harness.phase.sim_seconds").state()
    expect = seq_hist.state()
    assert merged["buckets"] == expect["buckets"]
    assert merged["count"] == expect["count"]
    assert merged["sum"] == pytest.approx(expect["sum"])


def test_histogram_delta_drops_unmoved_and_merge_is_incremental():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    h.observe(0.5)
    before = reg.snapshot()
    assert reg.delta_since(before) == {}  # unmoved histogram: dropped
    h.observe(3.0)
    delta = reg.delta_since(before)
    assert delta["lat"]["count"] == 1  # only the new observation
    other = MetricsRegistry()
    other.merge(delta)
    assert other.histogram("lat").state()["count"] == 1


def test_histogram_quantile_within_one_bucket_width():
    h = Histogram("lat")
    for s in _SAMPLES:
        if s <= 500.0:  # keep everything in finite buckets
            h.observe(s)
    finite = sorted(s for s in _SAMPLES if s <= 500.0)
    for q in (10.0, 50.0, 90.0, 95.0, 99.0):
        estimate = h.quantile(q)
        # Nearest-rank (ceil) ground truth, same convention as the
        # histogram's estimator.
        rank = max(1, -(-int(len(finite) * q) // 100))
        true_value = finite[rank - 1]
        # The estimate is the upper edge of the true value's bucket:
        # within one bucket width by construction.
        idx = next(
            i for i, b in enumerate(HISTOGRAM_BOUNDS) if true_value <= b
        )
        lower = HISTOGRAM_BOUNDS[idx - 1] if idx else 0.0
        upper = HISTOGRAM_BOUNDS[idx]
        assert lower < estimate <= upper, (q, estimate, true_value)
        assert true_value <= estimate


def test_histogram_reset_and_scalar_merge():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    h.observe(1.0)
    reg.reset()
    assert h.state()["count"] == 0
    # A scalar arriving for an existing histogram name is treated as
    # one observation, never a corruption of bucket state.
    reg.merge({"lat": 0.25})
    assert h.state()["count"] == 1


def test_histogram_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.histogram("x")
