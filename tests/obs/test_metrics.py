"""Tests for the counters/gauges registry."""

import pytest

from repro.obs.metrics import MetricsRegistry


def test_counter_get_or_create_identity():
    reg = MetricsRegistry()
    a = reg.counter("x.hits")
    b = reg.counter("x.hits")
    assert a is b
    a.add()
    a.add(4)
    assert b.value == 5


def test_gauge_set_last_value_wins():
    reg = MetricsRegistry()
    g = reg.gauge("x.rate")
    g.set(10.0)
    g.set(3.5)
    assert g.value == 3.5


def test_snapshot_is_sorted_and_complete():
    reg = MetricsRegistry()
    reg.counter("b.count").add(2)
    reg.gauge("a.rate").set(1.5)
    snap = reg.snapshot()
    assert list(snap) == ["a.rate", "b.count"]
    assert snap == {"a.rate": 1.5, "b.count": 2}


def test_reset_zeroes_but_keeps_references():
    reg = MetricsRegistry()
    c = reg.counter("n")
    c.add(7)
    reg.reset()
    assert c.value == 0
    c.add()  # the cached reference still feeds the registry
    assert reg.snapshot() == {"n": 1}


def test_clear_drops_registrations():
    reg = MetricsRegistry()
    reg.counter("n").add()
    reg.clear()
    assert reg.snapshot() == {}


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
