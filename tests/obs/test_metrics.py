"""Tests for the counters/gauges registry."""

import pytest

from repro.obs.metrics import MetricsRegistry, snapshot_delta


def test_counter_get_or_create_identity():
    reg = MetricsRegistry()
    a = reg.counter("x.hits")
    b = reg.counter("x.hits")
    assert a is b
    a.add()
    a.add(4)
    assert b.value == 5


def test_gauge_set_last_value_wins():
    reg = MetricsRegistry()
    g = reg.gauge("x.rate")
    g.set(10.0)
    g.set(3.5)
    assert g.value == 3.5


def test_snapshot_is_sorted_and_complete():
    reg = MetricsRegistry()
    reg.counter("b.count").add(2)
    reg.gauge("a.rate").set(1.5)
    snap = reg.snapshot()
    assert list(snap) == ["a.rate", "b.count"]
    assert snap == {"a.rate": 1.5, "b.count": 2}


def test_reset_zeroes_but_keeps_references():
    reg = MetricsRegistry()
    c = reg.counter("n")
    c.add(7)
    reg.reset()
    assert c.value == 0
    c.add()  # the cached reference still feeds the registry
    assert reg.snapshot() == {"n": 1}


def test_clear_drops_registrations():
    reg = MetricsRegistry()
    reg.counter("n").add()
    reg.clear()
    assert reg.snapshot() == {}


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_delta_since_counters_diff_gauges_report_current():
    reg = MetricsRegistry()
    reg.counter("sims").add(3)
    reg.gauge("rate").set(100.0)
    before = reg.snapshot()
    reg.counter("sims").add(2)
    reg.gauge("rate").set(250.0)
    delta = reg.delta_since(before)
    # Counter: only the change.  Gauge: its current (last) value, not
    # the numeric difference -- a reused worker's rate gauge must not
    # merge as "rate went up by 150".
    assert delta == {"sims": 2, "rate": 250.0}


def test_delta_since_drops_unchanged():
    reg = MetricsRegistry()
    reg.counter("still").add(4)
    before = reg.snapshot()
    assert reg.delta_since(before) == {}


def test_merge_adds_counters_and_sets_gauges():
    reg = MetricsRegistry()
    reg.counter("sims").add(1)
    reg.gauge("rate").set(10.0)
    reg.merge({"sims": 5, "rate": 99.0, "fresh.counter": 2})
    snap = reg.snapshot()
    assert snap["sims"] == 6
    assert snap["rate"] == 99.0
    # Unknown names become counters (worker saw a code path the parent
    # has not touched yet) and merge additively thereafter.
    assert snap["fresh.counter"] == 2
    reg.merge({"fresh.counter": 3})
    assert reg.snapshot()["fresh.counter"] == 5


def test_snapshot_delta_roundtrip_through_merge():
    worker = MetricsRegistry()
    before = worker.snapshot()
    worker.counter("a").add(7)
    worker.counter("b").add(0)  # never moved: dropped from the delta
    delta = snapshot_delta(before, worker.snapshot())
    assert delta == {"a": 7}

    parent = MetricsRegistry()
    parent.counter("a").add(1)
    parent.merge(delta)
    assert parent.snapshot()["a"] == 8
