"""Tests for microarchitectural tracing (utrace) and its exporters."""

import json

import pytest

from repro.config import MachineConfig
from repro.cpu.pipeline import simulate
from repro.errors import ConfigError
from repro.frontend import interpret
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg
from repro.obs import utrace
from repro.obs.export import (
    build_chrome_trace,
    build_kanata,
    validate_chrome_file,
    validate_chrome_trace,
)


@pytest.fixture(autouse=True)
def _utrace_off():
    """Tracing is process-global; every test starts and ends disabled."""
    utrace.disable()
    utrace.drain_artifacts()
    yield
    utrace.disable()
    utrace.drain_artifacts()


def _alu_loop(n=200):
    b = ProgramBuilder("alu")
    b.set_reg(Reg.r2, n)
    b.li(Reg.r1, 0)
    b.label("top")
    b.add(Reg.r3, Reg.r3, Reg.r4)
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return interpret(b.build())


def _missing_load_loop(n=50, stride=4096):
    b = ProgramBuilder("miss")
    b.data.alloc("big", (n + 1) * stride // 8)
    base = b.data.base("big")
    b.set_reg(Reg.r2, n)
    b.set_reg(Reg.r5, stride)
    b.li(Reg.r1, 0)
    b.li(Reg.r6, base)
    b.label("top")
    b.load(Reg.r3, Reg.r6)
    b.add(Reg.r6, Reg.r6, Reg.r5)
    b.addi(Reg.r1, Reg.r1, 1)
    b.blt(Reg.r1, Reg.r2, "top")
    b.halt()
    return interpret(b.build())


# --------------------------------------------------------------------- #
# Configuration plumbing.
# --------------------------------------------------------------------- #


class TestConfig:
    def test_off_by_default(self):
        assert not utrace.enabled()
        assert utrace.collector_for(MachineConfig()) is None

    def test_parse_window(self):
        assert utrace.parse_window("100:200") == (100, 200)
        assert utrace.parse_window(":200") == (0, 200)
        assert utrace.parse_window("100:") == (100, utrace.WINDOW_END_MAX)
        assert utrace.parse_window(":") == (0, utrace.WINDOW_END_MAX)

    @pytest.mark.parametrize("bad", ["abc", "1-2", "2:1", "1:2:3", ""])
    def test_parse_window_rejects(self, bad):
        with pytest.raises(ConfigError):
            utrace.parse_window(bad)

    def test_configure_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ConfigError):
            utrace.configure(str(tmp_path), formats=("svg",))

    def test_encode_roundtrip(self, tmp_path):
        utrace.configure(
            str(tmp_path), window=(5, 99), formats=("chrome",),
            energy_audit=False, max_insts=7,
        )
        payload = utrace.encode()
        utrace.disable()
        utrace.apply_encoded(payload)
        cfg = utrace.config()
        assert cfg.window == (5, 99)
        assert cfg.formats == ("chrome",)
        assert cfg.energy_audit is False
        assert cfg.max_insts == 7

    def test_apply_encoded_none_disables(self, tmp_path):
        utrace.configure(str(tmp_path))
        utrace.apply_encoded(None)
        assert not utrace.enabled()

    def test_scope_nests_and_restores(self):
        assert utrace.current_label() is None
        with utrace.scope(label="outer", cell="c1"):
            assert utrace.current_label() == "outer"
            with utrace.scope(label="inner"):
                assert utrace.current_label() == "inner"
                assert utrace.current_cell() == "c1"
            assert utrace.current_label() == "outer"
        assert utrace.current_label() is None
        assert utrace.current_cell() is None


# --------------------------------------------------------------------- #
# A traced simulation end to end.
# --------------------------------------------------------------------- #


class TestTracedSimulation:
    def test_exports_validate_and_register(self, tmp_path):
        utrace.configure(str(tmp_path))
        with utrace.scope(label="alu.unit"):
            stats = simulate(_alu_loop())
        artifacts = utrace.drain_artifacts()
        kinds = sorted(a["kind"] for a in artifacts)
        assert kinds == ["chrome_trace", "kanata_log", "utrace_summary"]
        by_kind = {a["kind"]: a for a in artifacts}

        chrome = by_kind["chrome_trace"]["path"]
        validate_chrome_file(chrome)  # raises on schema violation
        doc = json.load(open(chrome))
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"b", "e", "M"} <= phases
        assert doc["otherData"]["cycles"] == stats.cycles

        kanata = open(by_kind["kanata_log"]["path"]).read()
        assert kanata.startswith("Kanata\t0004\n")
        assert "\tR\t" not in kanata.split("\n")[0]
        # every recorded instruction retires in this simple loop
        assert kanata.count("\nI\t") == stats.committed

        summary = json.load(open(by_kind["utrace_summary"]["path"]))
        assert summary["label"] == "alu.unit"
        assert summary["insts_recorded"] == stats.committed
        assert summary["energy_audit"]["ok"] is True
        assert sum(summary["stall_slots"].values()) == (
            summary["width"] * summary["cycles"]
        )

    def test_artifact_records_match_disk(self, tmp_path):
        import os

        utrace.configure(str(tmp_path))
        simulate(_alu_loop())
        for art in utrace.drain_artifacts():
            assert os.path.getsize(art["path"]) == art["bytes"]

    def test_window_restricts_recording(self, tmp_path):
        utrace.configure(str(tmp_path), window=(0, 5))
        stats = simulate(_missing_load_loop())
        (summary,) = [
            a for a in utrace.drain_artifacts()
            if a["kind"] == "utrace_summary"
        ]
        data = json.load(open(summary["path"]))
        assert 0 < data["insts_recorded"] < stats.committed
        assert data["window"] == [0, 5]

    def test_max_insts_caps_volume(self, tmp_path):
        utrace.configure(str(tmp_path), max_insts=10)
        stats = simulate(_alu_loop())
        (summary,) = [
            a for a in utrace.drain_artifacts()
            if a["kind"] == "utrace_summary"
        ]
        data = json.load(open(summary["path"]))
        assert data["insts_recorded"] == 10
        assert data["insts_dropped"] == stats.committed - 10

    def test_untraced_stats_unchanged(self, tmp_path):
        """Tracing must observe, never perturb, the timing simulation."""
        baseline = simulate(_missing_load_loop())
        utrace.configure(str(tmp_path))
        traced = simulate(_missing_load_loop())
        utrace.drain_artifacts()
        assert traced.cycles == baseline.cycles
        assert traced.committed == baseline.committed
        assert traced.stalls.as_dict() == baseline.stalls.as_dict()
        assert traced.breakdown.as_dict() == baseline.breakdown.as_dict()

    def test_audit_disabled_omits_energy(self, tmp_path):
        utrace.configure(str(tmp_path), energy_audit=False)
        simulate(_alu_loop())
        (summary,) = [
            a for a in utrace.drain_artifacts()
            if a["kind"] == "utrace_summary"
        ]
        assert "energy_audit" not in json.load(open(summary["path"]))


# --------------------------------------------------------------------- #
# Exporter validation.
# --------------------------------------------------------------------- #


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) != []

    def test_rejects_unbalanced_async(self):
        doc = {"traceEvents": [
            {"ph": "b", "name": "x", "cat": "c", "id": "1",
             "ts": 0, "pid": 1, "tid": 0},
        ]}
        assert any("unbalanced" in e for e in validate_chrome_trace(doc))

    def test_rejects_end_before_begin(self):
        doc = {"traceEvents": [
            {"ph": "e", "name": "x", "cat": "c", "id": "1",
             "ts": 0, "pid": 1, "tid": 0},
        ]}
        assert any("without begin" in e for e in validate_chrome_trace(doc))

    def test_rejects_non_numeric_ts(self):
        doc = {"traceEvents": [
            {"ph": "i", "name": "x", "ts": "soon", "pid": 1, "tid": 0},
        ]}
        assert any("numeric" in e for e in validate_chrome_trace(doc))

    def test_build_functions_are_pure(self, tmp_path):
        utrace.configure(str(tmp_path), window=(0, 50))
        stats = simulate(_missing_load_loop())
        utrace.drain_artifacts()
        utrace.configure(str(tmp_path))
        collector = utrace.Collector(MachineConfig(), label="pure")
        collector.fetch_main(0, 1, 0x40)
        collector.dispatch(1, 1, False)
        collector.issue(2, 1, 3)
        collector.retire(4, 1)
        doc = build_chrome_trace(collector, stats)
        assert validate_chrome_trace(doc) == []
        text = build_kanata(collector, stats)
        assert text.startswith("Kanata\t0004")
        assert "R\t0\t0\t0" in text
