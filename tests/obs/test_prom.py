"""Prometheus text-format exposition: rendering and the strict parser."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    CONTENT_TYPE,
    PromFormatError,
    parse_prometheus_text,
    render_prometheus,
    sanitize_metric_name,
)


def _registry():
    reg = MetricsRegistry()
    reg.counter("server.admission.shed_queue_full").add(3)
    reg.gauge("harness.sim.rate").set(125000.5)
    hist = reg.histogram("server.queue.wait_seconds")
    for v in (0.002, 0.03, 0.03, 1.7, 400.0, 9999.0):
        hist.observe(v)
    return reg


def test_content_type_declares_text_format_version():
    assert "version=0.0.4" in CONTENT_TYPE


def test_sanitize_maps_dots_to_underscores():
    assert sanitize_metric_name("server.queue.depth") == "server_queue_depth"
    assert sanitize_metric_name("9bad") == "_9bad"


def test_render_output_passes_the_strict_parser():
    text = render_prometheus(
        _registry(),
        extra_gauges={"server.queue.depth": 4.0},
        help_text={"server.queue.depth": "jobs waiting to run"},
    )
    families = parse_prometheus_text(text)
    assert families["server_admission_shed_queue_full_total"]["type"] == (
        "counter"
    )
    assert families["harness_sim_rate"]["type"] == "gauge"
    assert families["server_queue_wait_seconds"]["type"] == "histogram"
    assert families["server_queue_depth"]["type"] == "gauge"
    assert "# HELP server_queue_depth jobs waiting to run" in text


def test_counter_samples_get_total_suffix():
    text = render_prometheus(_registry())
    assert "server_admission_shed_queue_full_total 3" in text
    assert "\nserver_admission_shed_queue_full 3" not in text


def test_histogram_buckets_are_cumulative_and_inf_matches_count():
    text = render_prometheus(_registry())
    families = parse_prometheus_text(text)
    samples = families["server_queue_wait_seconds"]["samples"]
    buckets = [
        (labels["le"], value)
        for name, labels, value in samples
        if name.endswith("_bucket")
    ]
    assert buckets[-1] == ("+Inf", 6.0)  # one 9999s outlier overflows
    values = [v for _, v in buckets]
    assert values == sorted(values)  # cumulative
    count = next(
        v for n, _, v in samples if n == "server_queue_wait_seconds_count"
    )
    assert count == 6.0
    total = next(
        v for n, _, v in samples if n == "server_queue_wait_seconds_sum"
    )
    assert total == pytest.approx(0.002 + 0.03 + 0.03 + 1.7 + 400.0 + 9999.0)


def test_parser_rejects_bad_metric_and_label_names():
    with pytest.raises(PromFormatError):
        parse_prometheus_text("# TYPE 9bad counter\n9bad_total 1\n")
    with pytest.raises(PromFormatError):
        parse_prometheus_text('ok{9bad="x"} 1\n')


def test_parser_rejects_histogram_without_type():
    with pytest.raises(PromFormatError):
        parse_prometheus_text('orphan_bucket{le="+Inf"} 3\n')


def test_parser_rejects_non_cumulative_buckets():
    bad = (
        "# TYPE h histogram\n"
        '# HELP h h\n'
        'h_bucket{le="1.0"} 5\n'
        'h_bucket{le="2.0"} 3\n'  # decreased: not cumulative
        'h_bucket{le="+Inf"} 5\n'
        "h_sum 4.0\n"
        "h_count 5\n"
    )
    with pytest.raises(PromFormatError):
        parse_prometheus_text(bad)


def test_parser_rejects_missing_inf_bucket_and_count_mismatch():
    no_inf = (
        "# TYPE h histogram\n"
        'h_bucket{le="1.0"} 5\n'
        "h_sum 4.0\nh_count 5\n"
    )
    with pytest.raises(PromFormatError):
        parse_prometheus_text(no_inf)
    mismatch = (
        "# TYPE h histogram\n"
        'h_bucket{le="1.0"} 5\n'
        'h_bucket{le="+Inf"} 5\n'
        "h_sum 4.0\nh_count 7\n"
    )
    with pytest.raises(PromFormatError):
        parse_prometheus_text(mismatch)


def test_parser_rejects_duplicate_type_and_bad_values():
    with pytest.raises(PromFormatError):
        parse_prometheus_text(
            "# TYPE x gauge\n# TYPE x gauge\nx 1\n"
        )
    with pytest.raises(PromFormatError):
        parse_prometheus_text("x one\n")


def test_parser_accepts_special_float_values():
    families = parse_prometheus_text("x +Inf\ny NaN\n")
    assert families["x"]["samples"][0][2] == math.inf
    assert math.isnan(families["y"]["samples"][0][2])


def test_empty_registry_renders_and_parses():
    assert parse_prometheus_text(render_prometheus(MetricsRegistry())) == {}
