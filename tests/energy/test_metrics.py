"""Tests for ED/ED^2 metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy.metrics import ed, ed2, relative_metrics
from repro.errors import ConfigError

pos = st.floats(min_value=0.1, max_value=1e6, allow_nan=False)


def test_ed_and_ed2_basics():
    assert ed(2.0, 3.0) == 6.0
    assert ed2(2.0, 3.0) == 18.0


def test_relative_metrics_signs():
    m = relative_metrics(100.0, 10.0, 80.0, 11.0)
    assert m["speedup_pct"] == pytest.approx(20.0)
    assert m["energy_save_pct"] == pytest.approx(-10.0)
    # ED improves: 0.8 * 1.1 = 0.88 < 1.
    assert m["ed_save_pct"] == pytest.approx(12.0)


def test_zero_baseline_rejected():
    with pytest.raises(ConfigError):
        relative_metrics(0.0, 1.0, 1.0, 1.0)


@given(d0=pos, e0=pos, d1=pos, e1=pos)
def test_relative_metric_identities(d0, e0, d1, e1):
    m = relative_metrics(d0, e0, d1, e1)
    # ED2 save relates to ED and speedup consistently:
    # (1 - ed2) == 1 - (1-ed)*(1-spd) in relative space.
    rel_d = 1.0 - m["speedup_pct"] / 100.0
    rel_e = 1.0 - m["energy_save_pct"] / 100.0
    assert 1.0 - m["ed_save_pct"] / 100.0 == pytest.approx(
        rel_d * rel_e, rel=1e-6
    )
    assert 1.0 - m["ed2_save_pct"] / 100.0 == pytest.approx(
        rel_d * rel_d * rel_e, rel=1e-6
    )


def test_unchanged_run_scores_zero():
    m = relative_metrics(50.0, 5.0, 50.0, 5.0)
    assert all(abs(v) < 1e-9 for v in m.values())
