"""Tests for the CACTI-like L2 energy scaling law."""

import pytest

from repro.energy.cacti import BASELINE_L2_BYTES, l2_access_energy_scale
from repro.errors import ConfigError


def test_baseline_is_unity():
    assert l2_access_energy_scale(BASELINE_L2_BYTES) == pytest.approx(1.0)


def test_monotone_in_capacity():
    sizes = [64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024]
    scales = [l2_access_energy_scale(s) for s in sizes]
    assert scales == sorted(scales)


def test_sqrt_law():
    assert l2_access_energy_scale(4 * BASELINE_L2_BYTES) == pytest.approx(2.0)


def test_rejects_nonpositive():
    with pytest.raises(ConfigError):
        l2_access_energy_scale(0)
