"""Tests for the Wattch-style energy model."""

import pytest

from repro.config import EnergyConfig, MachineConfig
from repro.cpu.stats import ActivityCounts
from repro.energy.wattch import EnergyModel


def _idle_activity(cycles=1000):
    return ActivityCounts(cycles=cycles)


def _busy_activity(cycles=1000):
    width = MachineConfig().width
    return ActivityCounts(
        cycles=cycles,
        fetch_blocks_main=cycles,
        bpred_accesses=cycles,
        dispatched_main=cycles * width,
        alu_ops_main=cycles * 6,
        dmem_accesses_main=cycles * 3,
        l2_accesses_main=cycles,
        committed_main=cycles * width,
    )


def test_idle_machine_draws_idle_factor():
    cfg = EnergyConfig()
    model = EnergyModel(cfg)
    result = model.evaluate(_idle_activity())
    expected = 1000 * cfg.idle_factor * cfg.e_max_per_cycle
    assert result.total_joules == pytest.approx(expected)
    assert result.idle_joules == pytest.approx(expected)


def test_full_activity_approaches_e_max():
    cfg = EnergyConfig()
    model = EnergyModel(cfg)
    result = model.evaluate(_busy_activity())
    e_max_total = 1000 * cfg.e_max_per_cycle
    # Full-port activity should land near e_max (calibration property).
    assert 0.9 * e_max_total <= result.total_joules <= 1.1 * e_max_total


def test_energy_scales_with_activity():
    model = EnergyModel()
    half = _busy_activity()
    half.dispatched_main //= 2
    half.alu_ops_main //= 2
    full = _busy_activity()
    assert model.evaluate(half).total_joules < model.evaluate(full).total_joules


def test_idle_factor_zero_removes_idle_energy():
    model = EnergyModel(EnergyConfig().with_idle_factor(0.0))
    result = model.evaluate(_idle_activity())
    assert result.total_joules == 0.0


def test_pthread_attribution_separates_categories():
    model = EnergyModel()
    act = _idle_activity()
    act.dispatched_pth = 500
    act.fetch_blocks_pth = 100
    act.dmem_accesses_pth = 50
    act.l2_accesses_pth = 20
    act.alu_ops_pth = 300
    result = model.evaluate(act)
    assert result.breakdown.pthread_total > 0
    assert result.breakdown.joules["ooo_pth"] > 0
    assert result.breakdown.joules["imem_pth"] > 0
    assert result.breakdown.joules["ooo_main"] == 0


def test_l2_energy_scales_with_capacity():
    small = EnergyModel(machine=MachineConfig().scaled_l2(128 * 1024, 10))
    big = EnergyModel(machine=MachineConfig().scaled_l2(512 * 1024, 15))
    act = _idle_activity()
    act.l2_accesses_main = 1000
    assert (
        small.evaluate(act).total_joules < big.evaluate(act).total_joules
    )


def test_pthsel_constants_match_paper_shares():
    """E8: the constants should sit near the paper's fractions of max
    per-cycle energy (fetch 9%, xall ~4.9%, alu 0.8%, load ~3.8%,
    L2 13.6%, idle 5%)."""
    cfg = EnergyConfig()
    model = EnergyModel(cfg)
    c = model.pthsel_constants()
    e_max = cfg.e_max_per_cycle
    assert c["e_idle"] / e_max == pytest.approx(0.05)
    assert c["e_l2"] / e_max == pytest.approx(0.136 * 0.95, rel=0.05)
    assert 0.05 < c["e_fetch"] / e_max < 0.20
    assert c["e_xalu"] < c["e_xload"] < c["e_xall"] + c["e_xload"]


def test_breakdown_total_matches_result_total():
    model = EnergyModel()
    result = model.evaluate(_busy_activity())
    assert result.breakdown.total == pytest.approx(result.total_joules)
    fractions = result.breakdown.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
