"""Zero-division guards on the energy breakdown."""

import pytest

from repro.energy.breakdown import CATEGORIES, EnergyBreakdown


def test_fractions_zero_run_is_all_zero():
    fractions = EnergyBreakdown().fractions()
    assert set(fractions) == set(CATEGORIES)
    assert all(v == 0.0 for v in fractions.values())


def test_fractions_sum_to_one_when_nonzero():
    bd = EnergyBreakdown()
    bd.add("imem_main", 3.0)
    bd.add("idle", 1.0)
    assert sum(bd.fractions().values()) == pytest.approx(1.0)
    assert bd.fractions()["imem_main"] == pytest.approx(0.75)


def test_relative_to_zero_baseline_is_all_zero():
    bd = EnergyBreakdown()
    bd.add("l2_main", 2.5)
    assert all(v == 0.0 for v in bd.relative_to(0.0).values())
    assert all(v == 0.0 for v in bd.relative_to(-1.0).values())


def test_relative_to_scales_to_percent():
    bd = EnergyBreakdown()
    bd.add("l2_main", 2.5)
    assert bd.relative_to(10.0)["l2_main"] == pytest.approx(25.0)
